#![allow(clippy::all)]
//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Timing model: per benchmark, warm up briefly, size an iteration batch to
//! a fixed sample duration, take several samples, and report the best
//! (least-noise) ns/iter. No statistical analysis, plots, or baselines —
//! just stable comparable numbers on stdout.
//!
//! Like the real crate, running the bench executable *without* `--bench`
//! (as `cargo test` does for bench targets) executes each benchmark once
//! as a smoke test instead of timing it.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration of one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
/// Warm-up duration before sampling.
const WARMUP_TARGET: Duration = Duration::from_millis(40);
/// Samples per benchmark (scaled down by `sample_size`).
const BASE_SAMPLES: usize = 5;

/// Benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` appends `--bench` to the executable's arguments;
        // `cargo test` does not.
        Criterion { bench_mode: std::env::args().any(|a| a == "--bench") }
    }
}

impl Criterion {
    /// Apply command-line configuration (no-op beyond `--bench` detection).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let bench_mode = self.bench_mode;
        BenchmarkGroup { _criterion: self, name: name.to_string(), bench_mode }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let bench_mode = self.bench_mode;
        run_one(id, bench_mode, f);
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    bench_mode: bool,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim's sampling is fixed-cost.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.bench_mode, |b| f(b));
        self
    }

    /// Run a benchmark parameterised by an input value.
    pub fn bench_with_input<P, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.bench_mode, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_string() }
    }
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the shim treats them
/// all as per-iteration setup.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Measures one benchmark body.
pub struct Bencher {
    bench_mode: bool,
    /// Best observed ns/iter, reported by the driver.
    best_ns: f64,
}

impl Bencher {
    /// Time a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.bench_mode {
            black_box(routine());
            return;
        }
        // Warm up and discover the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_TARGET || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut best = f64::INFINITY;
        for _ in 0..BASE_SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
        }
        self.best_ns = best;
    }

    /// Time a routine with untimed per-call setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !self.bench_mode {
            black_box(routine(setup()));
            return;
        }
        // Time only the routine; rebuild the input outside the clock.
        let mut measure = |iters: u64| -> Duration {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                total += t.elapsed();
            }
            total
        };
        let warm = measure(3);
        let per_iter = warm.as_secs_f64() / 3.0;
        let batch = ((SAMPLE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        let mut best = f64::INFINITY;
        for _ in 0..BASE_SAMPLES {
            let ns = measure(batch).as_nanos() as f64 / batch as f64;
            best = best.min(ns);
        }
        self.best_ns = best;
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(id: &str, bench_mode: bool, f: F) {
    let mut b = Bencher { bench_mode, best_ns: f64::NAN };
    f(&mut b);
    if bench_mode {
        println!("{id:<52} {}", fmt_ns(b.best_ns));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns.is_nan() {
        "(no measurement)".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:10.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:10.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:10.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:10.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion { bench_mode: false };
        let mut group = c.benchmark_group("g");
        let mut calls = 0usize;
        group.bench_function("a", |b| {
            b.iter(|| calls += 1);
        });
        group.bench_with_input(BenchmarkId::new("b", 3), &3usize, |b, &p| {
            b.iter_batched(|| p, |v| calls += v, BatchSize::SmallInput);
        });
        group.finish();
        assert_eq!(calls, 4); // one iter call + one batched call adding p=3
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("fit", 32).to_string(), "fit/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
