#![allow(clippy::all)]
//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Thin non-poisoning wrappers over `std::sync`: `lock()`/`read()`/`write()`
//! return guards directly (no `Result`), and a poisoned std lock is simply
//! recovered, matching parking_lot's behaviour of not propagating panics
//! through lock acquisition.

use std::sync;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive; `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock; `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn const_new_in_static() {
        static M: Mutex<u64> = Mutex::new(0);
        *M.lock() += 7;
        assert_eq!(*M.lock(), 7);
    }
}
