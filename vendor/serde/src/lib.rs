#![allow(clippy::all)]
//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of the real crate's visitor architecture, values serialise into
//! a concrete JSON-shaped [`Content`] tree and deserialise back out of it.
//! `serde_json` (the sibling shim) renders and parses that tree. The
//! public trait names and derive-macro spellings match the real crate so
//! workspace code is written exactly as it would be against serde proper.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped data model: every serialisable value lowers to this tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, as insertion-ordered key/value pairs.
    Map(Vec<(String, Content)>),
}

/// Shared `Null` for lookups of absent fields.
static NULL: Content = Content::Null;

impl Content {
    /// View as an object's entry list.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// View as an array.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// View as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view, widening integers to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Non-negative integer view (accepts integral floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Signed integer view (accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Content::I64(v) => Some(v),
            Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Look up a field in an object's entry list; absent fields read as `null`
/// (so `Option` fields deserialise to `None` and everything else reports a
/// type mismatch naming the null).
pub fn content_field<'a>(map: &'a [(String, Content)], name: &str) -> &'a Content {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&NULL)
}

/// Deserialisation error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Construct from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError { msg: msg.to_string() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A value that can lower itself to [`Content`].
pub trait Serialize {
    /// Lower to the data model.
    fn to_content(&self) -> Content;
}

/// A value reconstructable from [`Content`].
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool().ok_or_else(|| DeError::custom(format!("expected bool, got {c:?}")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c
                    .as_u64()
                    .ok_or_else(|| DeError::custom(format!("expected unsigned integer, got {c:?}")))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c
                    .as_i64()
                    .ok_or_else(|| DeError::custom(format!("expected integer, got {c:?}")))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            // Non-finite floats serialise as null (serde_json behaviour);
            // accept the round-trip back.
            Content::Null => Ok(f64::NAN),
            _ => c.as_f64().ok_or_else(|| DeError::custom(format!("expected number, got {c:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {c:?}")))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected array, got {c:?}")))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c
                    .as_seq()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {c:?}")))?;
                let want = [$($n),+].len();
                if seq.len() != want {
                    return Err(DeError::custom(format!(
                        "expected tuple of {want}, got array of {}",
                        seq.len()
                    )));
                }
                Ok(($($t::from_content(&seq[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_content(&true.to_content()).unwrap(), true);
        assert_eq!(usize::from_content(&42usize.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(String::from_content(&"hi".to_content()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![Some((1usize, 2usize, true)), None];
        let back: Vec<Option<(usize, usize, bool)>> =
            Deserialize::from_content(&v.to_content()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let map = vec![("a".to_string(), Content::U64(1))];
        assert_eq!(content_field(&map, "a"), &Content::U64(1));
        assert_eq!(content_field(&map, "b"), &Content::Null);
        let opt: Option<usize> = Deserialize::from_content(content_field(&map, "b")).unwrap();
        assert_eq!(opt, None);
    }
}
