#![allow(clippy::all)]
//! Offline shim for the subset of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str` and the `Error` type,
//! working over the sibling serde shim's [`Content`] tree.

use serde::{Content, Deserialize, Serialize};

/// Serialisation / parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialise a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content());
    Ok(out)
}

/// Serialise a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_content(), 0);
    Ok(out)
}

/// Parse JSON text into a value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

// ------------------------------------------------------------------ emitter

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_content(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, c: &Content, indent: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_content(out, other),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Non-finite floats have no JSON representation; serde_json emits null.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else {
        // `{:?}` is Rust's shortest round-trip formatting and always
        // includes a decimal point or exponent, so the value re-parses as
        // a float.
        out.push_str(&format!("{v:?}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // emitter; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v: Vec<Option<(usize, f64, bool)>> = vec![Some((3, 1.5, true)), None];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[3,1.5,true],null]");
        let back: Vec<Option<(usize, f64, bool)>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\tπ".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn numbers_preserve_integer_and_float_shape() {
        let json = to_string(&vec![1.0f64, 2.5, -3.0]).unwrap();
        assert_eq!(json, "[1.0,2.5,-3.0]");
        let ints: Vec<i64> = from_str("[1, -2, 3]").unwrap();
        assert_eq!(ints, vec![1, -2, 3]);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(usize, usize)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("1.5garbage").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
