#![allow(clippy::all)]
//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The `proptest!` macro runs each property over a fixed number of random
//! cases (default 96, override with `PROPTEST_CASES`) drawn from a
//! deterministic per-test RNG, so failures reproduce across runs. There is
//! no shrinking: a failing case panics with the assertion message directly.

/// Deterministic RNG driving case generation.
pub mod test_runner {
    /// xoshiro256++ seeded from a test-name hash: every test gets its own
    /// reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seed from an arbitrary string (the test name).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Derive a second strategy from each produced value and sample it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always produce a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u8);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification: an exact size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// `Vec` strategy; see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Option` strategy; see [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same shape as proptest's default weighting: mostly Some,
            // with None frequent enough to exercise the absent path.
            if rng.next_f64() < 0.1 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `None` about 10% of the time, otherwise `Some` of the inner value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Per-block configuration, settable via `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run this many cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Number of cases per property (`PROPTEST_CASES` overrides).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(96)
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over [`cases`] sampled inputs
/// (or the count given by a leading `#![proptest_config(...)]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { @cases ($config).cases as usize; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cases $crate::cases(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: usize = $cases;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Property assertion (no shrinking: fails the test directly).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn flat_map_links_lengths(
            (a, b) in (1usize..20).prop_flat_map(|n| (
                prop::collection::vec(0.0f64..1.0, n),
                prop::collection::vec(0.0f64..1.0, n),
            )),
        ) {
            prop_assert_eq!(a.len(), b.len());
        }

        #[test]
        fn exact_sizes_and_options(v in prop::collection::vec(prop::option::of(0usize..5), 6)) {
            prop_assert_eq!(v.len(), 6);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = 0usize..1000;
        let mut r1 = crate::test_runner::TestRng::for_test("t");
        let mut r2 = crate::test_runner::TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}
