#![allow(clippy::all)]
//! Offline shim for serde's derive macros, built directly on `proc_macro`
//! (no `syn`/`quote` available offline). It hand-parses the item token
//! stream and emits impls of the shim's `Serialize`/`Deserialize` traits
//! (content-tree based, see the sibling `serde` crate).
//!
//! Supported shapes — exactly what the workspace derives on:
//! - structs with named fields, optionally generic over plain type params
//! - enums with unit and newtype variants
//!
//! Unsupported shapes produce a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

enum Body {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Enum of unit (`false`) / newtype (`true`) variants.
    Enum(Vec<(String, bool)>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match which {
                Trait::Serialize => gen_serialize(&item),
                Trait::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("serde_derive generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected item name".to_string()),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i)?;

    let body_group = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(_)) | Some(TokenTree::Punct(_)) if kind == "struct" => {
                return Err(format!("serde_derive shim: struct `{name}` must use named fields"));
            }
            // `where` clauses would land here; the workspace doesn't use
            // them on serialised types.
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                return Err(format!(
                    "serde_derive shim: `where` clause on `{name}` is unsupported"
                ));
            }
            Some(_) => i += 1,
            None => return Err(format!("serde_derive: no body found for `{name}`")),
        }
    };

    let body = if kind == "struct" {
        Body::Struct(parse_named_fields(body_group.stream())?)
    } else {
        Body::Enum(parse_variants(body_group.stream(), &name)?)
    };
    Ok(Item { name, generics, body })
}

/// Advance past leading `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' then the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `<A, B: Bound, 'a>` into the list of *type* parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => *i += 1,
        _ => return Ok(params),
    }
    let mut depth = 1usize;
    let mut expect_param = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) => {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => expect_param = true,
                    '\'' => {
                        // Lifetime: consume the tick and its identifier.
                        *i += 1;
                        expect_param = false;
                    }
                    _ => {}
                }
                *i += 1;
            }
            Some(TokenTree::Ident(id)) => {
                if depth == 1 && expect_param {
                    let s = id.to_string();
                    if s == "const" {
                        return Err("serde_derive shim: const generics are unsupported".to_string());
                    }
                    params.push(s);
                    expect_param = false;
                }
                *i += 1;
            }
            Some(_) => *i += 1,
            None => return Err("serde_derive: unterminated generics".to_string()),
        }
    }
    Ok(params)
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!("serde_derive: expected field name, found `{other}`"))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde_derive: expected `:` after field `{name}`")),
        }
        // Skip the type: everything up to the next comma at angle depth 0.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream, enum_name: &str) -> Result<Vec<(String, bool)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => {
                return Err(format!("serde_derive: expected variant name, found `{other}`"))
            }
        };
        i += 1;
        let newtype = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                true
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde_derive shim: struct variant `{enum_name}::{name}` is unsupported"
                ));
            }
            _ => false,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, newtype));
    }
    Ok(variants)
}

// ------------------------------------------------------------------ codegen

/// `impl<...bounds> Trait for Name<...>` header halves.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounds: Vec<String> = item.generics.iter().map(|g| format!("{g}: {bound}")).collect();
        let args = item.generics.join(", ");
        (format!("<{}>", bounds.join(", ")), format!("{}<{args}>", item.name))
    }
}

fn gen_serialize(item: &Item) -> String {
    let (params, target) = impl_header(item, "::serde::Serialize");
    let body = match &item.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, newtype)| {
                    let name = &item.name;
                    if *newtype {
                        format!(
                            "{name}::{v}(__inner) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from({v:?}), \
                             ::serde::Serialize::to_content(__inner))])"
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                             ::serde::Content::Str(::std::string::String::from({v:?}))"
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl{params} ::serde::Serialize for {target} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (params, target) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::content_field(__map, {f:?}))?"
                    )
                })
                .collect();
            format!(
                "let __map = __content.as_map().ok_or_else(|| \
                 ::serde::DeError::custom(concat!(\"expected map for \", {name:?})))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, newtype)| !newtype)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let newtype_arms: Vec<String> = variants
                .iter()
                .filter(|(_, newtype)| *newtype)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_content(&__entries[0].1)?)),"
                    )
                })
                .collect();
            format!(
                "match __content {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {units}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => \
                 match __entries[0].0.as_str() {{\n\
                 {newtypes}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected variant of {name}, got {{__other:?}}\"))),\n\
                 }}",
                units = unit_arms.join("\n"),
                newtypes = newtype_arms.join("\n"),
            )
        }
    };
    format!(
        "impl{params} ::serde::Deserialize for {target} {{\n\
         fn from_content(__content: &::serde::Content) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
