#![allow(clippy::all)]
//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! Deterministic by construction: [`rngs::StdRng`] is xoshiro256++ seeded
//! through SplitMix64, so `seed_from_u64` yields the same stream on every
//! platform. The statistical quality is more than adequate for synthetic
//! data generation and sampling helpers; it is not a cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f64` in `[0,1)`,
    /// full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty range");
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
            let w = r.gen_range(10usize..12);
            assert!((10..12).contains(&w));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive bounds must both occur");
    }
}
