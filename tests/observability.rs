//! Invariants of the observability instrumentation: the metrics recorded
//! by the search pipeline must agree with the pipeline's own statistics,
//! and the hierarchical span aggregates must be self-consistent.
//!
//! Observability state is process-global, so every test takes the shared
//! lock, resets, and enables recording before driving the pipeline.

use smiler_core::{PredictorKind, SmilerSystem};
use smiler_gpu::Device;
use smiler_index::{IndexParams, SmilerIndex};
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::{Arc, Mutex, MutexGuard};

fn lock_obs() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    smiler_obs::reset();
    smiler_obs::set_enabled(true);
    g
}

fn road_sensor(days: usize, seed: u64) -> Vec<f64> {
    SyntheticSpec { kind: DatasetKind::Road, sensors: 1, days, seed }
        .generate()
        .sensors
        .remove(0)
        .values()
        .to_vec()
}

fn counter(snap: &smiler_obs::MetricsSnapshot, name: &str, label: &str) -> Option<u64> {
    snap.counters.iter().find(|c| c.name == name && c.label == label).map(|c| c.value)
}

/// The verified population can never exceed the candidate population, the
/// recorded counters must match the pipeline's own `SearchStats`, and
/// every recorded pruning ratio must be a valid fraction.
#[test]
fn search_metrics_agree_with_search_stats() {
    let _g = lock_obs();
    let series = road_sensor(10, 3);
    let device = Device::default_gpu();
    let params = IndexParams::default();
    let mut index = SmilerIndex::build(&device, series.clone(), params.clone());
    let out = index.search(&device, series.len() - 30);

    assert_eq!(out.stats.candidates.len(), out.stats.unfiltered.len());
    for (i, (&cand, &unf)) in out.stats.candidates.iter().zip(&out.stats.unfiltered).enumerate() {
        assert!(unf <= cand, "item {i}: verified {unf} of {cand} candidates");
    }

    let snap = smiler_obs::metrics_snapshot();
    for (i, &d) in params.lengths.iter().enumerate() {
        let label = format!("d={d}");
        assert_eq!(
            counter(&snap, "search.candidates", &label),
            Some(out.stats.candidates[i] as u64),
            "candidate counter for {label}"
        );
        assert_eq!(
            counter(&snap, "search.verified", &label),
            Some(out.stats.unfiltered[i] as u64),
            "verified counter for {label}"
        );
    }
    for h in snap.histograms.iter().filter(|h| h.name == "search.pruning_ratio") {
        assert!(h.count > 0);
        assert!((0.0..=1.0).contains(&h.min), "{}: min {}", h.label, h.min);
        assert!((0.0..=1.0).contains(&h.max), "{}: max {}", h.label, h.max);
    }
}

/// A parent span's total wall time must cover the sum of its direct
/// children (both are measured by the same clock, so the slack is pure
/// bookkeeping outside the children).
#[test]
fn span_totals_cover_their_children() {
    let _g = lock_obs();
    let series = road_sensor(10, 4);
    let device = Arc::new(Device::default_gpu());
    let histories = vec![series.clone(), road_sensor(10, 5)];
    let config = smiler_core::sensor::SmilerConfig { h_max: 3, ..Default::default() };
    let (mut system, rejected) =
        SmilerSystem::new(device, histories, config, PredictorKind::GaussianProcess);
    assert!(rejected.is_none());
    for step in 0..3 {
        let obs = vec![0.1 * step as f64; 2];
        let preds = system.step(1, &obs);
        assert_eq!(preds.len(), 2);
    }

    let spans = smiler_obs::span_snapshot();
    assert!(!spans.is_empty());
    for parent in &spans {
        let prefix = format!("{}/", parent.path);
        let child_sum: f64 = spans
            .iter()
            .filter(|s| s.path.starts_with(&prefix) && !s.path[prefix.len()..].contains('/'))
            .map(|s| s.total_seconds)
            .sum();
        // Timer granularity leaves each child's measurement a hair over or
        // under; tolerate a relative + absolute float slack.
        assert!(
            parent.total_seconds >= child_sum * (1.0 - 1e-6) - 1e-6,
            "span {} total {}s < children sum {}s",
            parent.path,
            parent.total_seconds,
            child_sum
        );
    }
    // The continuous step must have produced the full phase breakdown.
    let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
    for phase in [
        "step",
        "step/search",
        "step/search/filter",
        "step/search/verify",
        "step/search/select",
        "step/gp.predict",
        "step/gp.predict/gp.train",
        "step/ensemble.update",
    ] {
        assert!(paths.contains(&phase), "missing span {phase}; have {paths:?}");
    }
}

/// With the switch off, driving the pipeline must leave no trace at all.
#[test]
fn disabled_pipeline_records_nothing() {
    let _g = lock_obs();
    smiler_obs::set_enabled(false);
    let series = road_sensor(8, 6);
    let device = Device::default_gpu();
    let mut index = SmilerIndex::build(&device, series.clone(), IndexParams::default());
    let _ = index.search(&device, series.len() - 30);
    smiler_obs::set_enabled(true);
    let snap = smiler_obs::metrics_snapshot();
    assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    assert!(smiler_obs::span_snapshot().is_empty());
    assert!(smiler_obs::events_snapshot().is_empty());
}
