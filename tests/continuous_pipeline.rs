//! Long-running continuous-prediction integration: the whole system driven
//! for many steps, checking the behaviours the paper attributes to the
//! auto-tuning mechanism (§5.1) and the online GP training (§5.2.2).

#![allow(clippy::needless_range_loop)] // time-indexed evaluation loops

use smiler_baselines::SeriesPredictor;
use smiler_core::ensemble::{EnsembleConfig, EnsembleMode};
use smiler_core::sensor::{SmilerConfig, SmilerForecaster};
use smiler_core::{PredictorKind, SensorPredictor};
use smiler_gpu::Device;
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::Arc;

fn mall_sensor(days: usize, seed: u64) -> Vec<f64> {
    SyntheticSpec { kind: DatasetKind::Mall, sensors: 1, days, seed }
        .generate()
        .sensors
        .remove(0)
        .values()
        .to_vec()
}

/// Drive 60 continuous steps: predictions must stay finite, variances
/// positive, and the weights normalised throughout.
#[test]
fn long_run_stays_well_formed() {
    let series = mall_sensor(20, 1);
    let steps = 60;
    let split = series.len() - steps;
    let device = Arc::new(Device::default_gpu());
    let mut p = SensorPredictor::new(
        device,
        0,
        series[..split].to_vec(),
        SmilerConfig { h_max: 6, ..Default::default() },
        PredictorKind::GaussianProcess,
    );
    for (step, &truth) in series[split..].iter().enumerate() {
        for h in [1usize, 3, 6] {
            let (mean, var) = p.predict(h);
            assert!(mean.is_finite(), "step {step} h={h}");
            assert!(var > 0.0 && var.is_finite(), "step {step} h={h} var={var}");
        }
        p.observe(truth);
        for h in [1usize, 3, 6] {
            if let Some(w) = p.weights(h) {
                let sum: f64 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-6, "step {step} h={h}: weights sum {sum}");
                assert!(w.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
            }
        }
    }
}

/// Fig 11's claim at test scale: the full auto-tuned ensemble is at least
/// as accurate as freezing the weights (NS) on seasonal data.
#[test]
fn adaptive_weights_do_not_hurt() {
    let series = mall_sensor(25, 2);
    let steps = 40;
    let run = |mode: EnsembleMode| {
        let device = Arc::new(Device::default_gpu());
        let cfg = SmilerConfig {
            h_max: 3,
            ensemble: EnsembleConfig { mode, ..EnsembleConfig::default() },
            ..Default::default()
        };
        let mut f = SmilerForecaster::ar(device, cfg);
        let split = series.len() - steps - 3;
        f.train(&series[..split]);
        let mut err = 0.0;
        for t in split..split + steps {
            let (mean, _) = f.predict(1);
            err += (mean - series[t]).abs();
            f.observe(series[t]);
        }
        err / steps as f64
    };
    let adaptive = run(EnsembleMode::Full);
    let frozen = run(EnsembleMode::NoSelfAdaptive);
    assert!(
        adaptive <= frozen * 1.15,
        "adaptive MAE {adaptive:.4} should not trail frozen {frozen:.4} badly"
    );
}

/// Concept drift: when the generating process changes mid-stream, the
/// semi-lazy predictor keeps working because each query retrains on fresh
/// neighbours (the paper's core argument against eager learners).
#[test]
fn survives_concept_drift() {
    // First regime: daily sine. Second regime: amplitude doubled and phase
    // shifted.
    let per_day = 48;
    let n1 = per_day * 14;
    let n2 = per_day * 3;
    let mut series: Vec<f64> = (0..n1)
        .map(|i| ((i % per_day) as f64 / per_day as f64 * std::f64::consts::TAU).sin())
        .collect();
    series.extend((0..n2).map(|i| {
        2.0 * (((i % per_day) as f64 / per_day as f64 + 0.25) * std::f64::consts::TAU).sin()
    }));

    let steps = per_day; // evaluate within the drifted regime
    let split = series.len() - steps;
    let device = Arc::new(Device::default_gpu());
    let mut p = SensorPredictor::new(
        device,
        0,
        series[..split].to_vec(),
        SmilerConfig { h_max: 2, ..Default::default() },
        PredictorKind::Aggregation,
    );
    let mut err = 0.0;
    for t in split..series.len() {
        let (mean, _) = p.predict(1);
        err += (mean - series[t]).abs();
        p.observe(series[t]);
    }
    let mae = err / steps as f64;
    // The drifted regime has amplitude 2; a frozen pre-drift model would be
    // off by O(1). The semi-lazy predictor must do much better.
    assert!(mae < 0.5, "post-drift MAE {mae:.3} too high");
}

/// The GP forecaster's interval coverage: roughly the right fraction of
/// truths must fall inside the 95% predictive interval (calibration, the
/// MNLPD story of Figs 9–10).
#[test]
fn gp_intervals_have_reasonable_coverage() {
    let series = mall_sensor(22, 3);
    let steps = 50;
    let split = series.len() - steps;
    let device = Arc::new(Device::default_gpu());
    let mut p = SensorPredictor::new(
        device,
        0,
        series[..split].to_vec(),
        SmilerConfig { h_max: 2, ..Default::default() },
        PredictorKind::GaussianProcess,
    );
    let mut inside = 0usize;
    for t in split..split + steps {
        let (mean, var) = p.predict(1);
        let sd = var.sqrt();
        if (series[t] - mean).abs() <= 1.96 * sd {
            inside += 1;
        }
        p.observe(series[t]);
    }
    let coverage = inside as f64 / steps as f64;
    assert!(
        coverage >= 0.6,
        "95% interval covered only {coverage:.2} of truths — variance badly miscalibrated"
    );
}
