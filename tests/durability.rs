//! Durability tier-1 suite: crash injection, corruption fallback, and the
//! headline invariant — a fleet killed mid-run and restored from
//! checkpoint + WAL produces **bitwise-identical** predictions to a fleet
//! that never stopped.

use smiler_core::{
    DurableSystem, PredictorKind, SensorStream, ServeConfig, SmilerConfig, SmilerServer,
    SmilerSystem,
};
use smiler_gpu::Device;
use smiler_store::{FlushPolicy, Store, StoreConfig};
use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smiler_durab_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn store_config() -> StoreConfig {
    StoreConfig { flush: FlushPolicy::Always, ..StoreConfig::default() }
}

fn histories(count: usize, n: usize) -> Vec<Vec<f64>> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..count)
        .map(|s| {
            (0..n)
                .map(|i| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((i + s * 17) as f64 * std::f64::consts::TAU / 24.0).sin()
                        + (state % 1000) as f64 / 2500.0
                })
                .collect()
        })
        .collect()
}

/// Deterministic observation for round `r`, sensor `s`.
fn obs(r: usize, s: usize) -> f64 {
    ((r * 7 + s * 13) as f64 * 0.21).sin() * 0.8
}

fn round_values(r: usize, sensors: usize) -> Vec<f64> {
    (0..sensors).map(|s| obs(r, s)).collect()
}

/// The headline invariant, exercised with the full GP pipeline: kill the
/// durable fleet mid-run (no final checkpoint), restore, and require every
/// later prediction to match the never-stopped fleet **bit for bit**.
#[test]
fn restored_fleet_is_bitwise_identical_to_never_stopped() {
    let dir = tmpdir("bitwise");
    let config = SmilerConfig::small_for_tests();
    let kind = PredictorKind::GaussianProcess;
    let fleet = 3usize;
    let h = 3usize;

    let (mut control, _) = SmilerSystem::new(
        Arc::new(Device::default_gpu()),
        histories(fleet, 420),
        config.clone(),
        kind,
    );
    let (mut durable, oom) = DurableSystem::create(
        Arc::new(Device::default_gpu()),
        histories(fleet, 420),
        config,
        kind,
        &dir,
        store_config(),
        /* checkpoint_every */ 8,
    )
    .expect("create durable fleet");
    assert!(oom.is_none());

    // Phase 1: both fleets run 30 rounds; the durable wrapper must not
    // perturb the math.
    for r in 0..30 {
        let values = round_values(r, fleet);
        let a = control.step(h, &values);
        let b = durable.step(h, &values).expect("durable step");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0.to_bits(), y.0.to_bits(), "round {r}: durable wrapper changed mean");
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "round {r}: durable wrapper changed var");
        }
    }

    // Kill: drop without a final checkpoint. 30 rounds at cadence 8 leave
    // a WAL tail past the last checkpoint that replay must cover.
    drop(durable);

    let (mut restored, report) =
        DurableSystem::open(Arc::new(Device::default_gpu()), &dir, store_config(), 8)
            .expect("restore after kill");
    assert_eq!(report.sensors, fleet);
    assert!(
        report.replayed_rounds > 0 && report.replayed_rounds < 30,
        "checkpoints must bound the replay tail, replayed {}",
        report.replayed_rounds
    );

    // Phase 2: 20 more rounds in lockstep, bitwise.
    for r in 30..50 {
        let values = round_values(r, fleet);
        let a = control.step(h, &values);
        let b = restored.step(h, &values).expect("durable step after restore");
        for (s, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.0.to_bits(),
                y.0.to_bits(),
                "round {r} sensor {s}: restored mean {} vs control {}",
                y.0,
                x.0
            );
            assert_eq!(x.1.to_bits(), y.1.to_bits(), "round {r} sensor {s}: variance drifted");
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Crash injection: truncate the WAL at **every byte offset** inside the
/// final record; recovery must land exactly on the last whole record.
#[test]
fn torn_tail_at_every_byte_offset_recovers_last_whole_record() {
    // An Observe record frames to 8 (len+crc) + 21 (payload) = 29 bytes.
    const FRAMED: u64 = 29;
    let dir = tmpdir("torn_every_byte");
    for cut in 1..=FRAMED {
        let _ = fs::remove_dir_all(&dir);
        {
            let (mut store, _) = Store::open(&dir, store_config()).expect("create");
            for i in 0..5u32 {
                store
                    .append_observe(i, f64::from_bits(0x7FF8_0000_0000_0000 + i as u64)) // NaN payloads
                    .expect("append");
            }
        }
        let seg = dir.join("wal").join("wal-00000001.seg");
        let len = fs::metadata(&seg).expect("segment exists").len();
        let f = OpenOptions::new().write(true).open(&seg).expect("open segment");
        f.set_len(len - cut).expect("truncate");
        drop(f);

        let (store, recovery) = Store::open(&dir, store_config()).expect("reopen");
        assert_eq!(
            recovery.replay.len(),
            4,
            "cut {cut}: expected exactly the 4 whole records to survive"
        );
        assert_eq!(store.last_seq(), 4, "cut {cut}: append position must follow the repair");
        assert_eq!(recovery.quarantined_segments, 0, "cut {cut}: a torn tail is not corruption");
        if cut < FRAMED {
            assert!(recovery.truncated_bytes > 0, "cut {cut}: should report repaired bytes");
        }
        // The surviving records kept their NaN payloads bitwise.
        for (i, r) in recovery.replay.iter().enumerate() {
            match r {
                smiler_store::WalRecord::Observe { value, .. } => {
                    assert_eq!(value.to_bits(), 0x7FF8_0000_0000_0000 + i as u64);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Corruption fallback: flip one byte in the newest checkpoint; recovery
/// must fall back to the previous checkpoint and cover the difference
/// from the WAL — still bitwise-identical to the never-stopped fleet.
#[test]
fn corrupt_checkpoint_falls_back_and_stays_bitwise() {
    let config = SmilerConfig::small_for_tests();
    let kind = PredictorKind::Aggregation;
    let fleet = 2usize;
    let h = 1usize;

    // Flip a byte near the start, middle and end of the file.
    for probe in 0..3usize {
        let dir = tmpdir(&format!("ckpt_flip_{probe}"));
        let (mut control, _) = SmilerSystem::new(
            Arc::new(Device::default_gpu()),
            histories(fleet, 320),
            config.clone(),
            kind,
        );
        let (mut durable, _) = DurableSystem::create(
            Arc::new(Device::default_gpu()),
            histories(fleet, 320),
            config.clone(),
            kind,
            &dir,
            store_config(),
            /* checkpoint_every */ 6,
        )
        .expect("create");
        for r in 0..20 {
            let values = round_values(r, fleet);
            control.step(h, &values);
            durable.step(h, &values).expect("step");
        }
        drop(durable);

        // Corrupt the newest checkpoint file.
        let ckpt_dir = dir.join("ckpt");
        let newest = fs::read_dir(&ckpt_dir)
            .expect("ckpt dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "ck"))
            .max()
            .expect("at least one checkpoint");
        let mut bytes = fs::read(&newest).expect("read checkpoint");
        let pos = match probe {
            0 => 3,               // header magic
            1 => bytes.len() / 2, // payload middle
            _ => bytes.len() - 1, // payload end
        };
        bytes[pos] ^= 0x40;
        fs::write(&newest, &bytes).expect("write corrupted checkpoint");

        let (mut restored, report) =
            DurableSystem::open(Arc::new(Device::default_gpu()), &dir, store_config(), 6)
                .expect("restore past the corrupt checkpoint");
        assert!(
            report.quarantined_checkpoints >= 1,
            "probe {probe}: the damaged checkpoint must be quarantined"
        );
        for r in 20..32 {
            let values = round_values(r, fleet);
            let a = control.step(h, &values);
            let b = restored.step(h, &values).expect("step after fallback");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.0.to_bits(), y.0.to_bits(), "probe {probe} round {r}: mean drifted");
                assert_eq!(x.1.to_bits(), y.1.to_bits(), "probe {probe} round {r}: var drifted");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// The stream front end appends to the WAL before the index advances, and
/// the logged values match what the predictor absorbed, bitwise.
#[test]
fn stream_ingest_logs_before_absorbing() {
    let dir = tmpdir("stream");
    let (store, _) = Store::open(&dir, store_config()).expect("create");
    let shared = smiler_store::shared(store);

    let raw: Vec<f64> =
        (0..400).map(|i| 400.0 + 150.0 * (i as f64 * std::f64::consts::TAU / 24.0).sin()).collect();
    let mut stream = SensorStream::new(
        Arc::new(Device::default_gpu()),
        7,
        &raw,
        4000,
        10,
        SmilerConfig::small_for_tests(),
        PredictorKind::Aggregation,
    )
    .with_store(Arc::clone(&shared));

    let before = stream.predictor().history().len();
    stream.ingest(4010, 452.5).expect("ingest");
    stream.ingest(4040, 471.25).expect("ingest with a 2-tick gap fill");
    let absorbed = stream.predictor().history()[before..].to_vec();
    assert_eq!(absorbed.len(), 4);
    assert_eq!(shared.lock().last_seq(), 4, "every absorbed sample must hit the WAL");

    drop(stream);
    drop(shared);
    let (_, recovery) = Store::open(&dir, store_config()).expect("reopen");
    assert_eq!(recovery.replay.len(), 4);
    for (logged, lived) in recovery.replay.iter().zip(&absorbed) {
        match logged {
            smiler_store::WalRecord::Observe { sensor, value, .. } => {
                assert_eq!(*sensor, 7);
                assert_eq!(value.to_bits(), lived.to_bits(), "WAL and memory must agree bitwise");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The sharded serving frontend: observations served through a
/// store-attached server survive shutdown (checkpoint on drain) and a
/// `--data-dir` style restart resumes with the absorbed histories.
#[test]
fn served_observations_survive_server_restart() {
    let dir = tmpdir("serve");
    let config = SmilerConfig::small_for_tests();
    let kind = PredictorKind::Aggregation;
    let fleet = 4usize;

    let (durable, _) = DurableSystem::create(
        Arc::new(Device::default_gpu()),
        histories(fleet, 320),
        config.clone(),
        kind,
        &dir,
        store_config(),
        0,
    )
    .expect("create");
    let (system, store) = durable.into_parts();
    let server = SmilerServer::start_with_store(
        Arc::new(Device::default_gpu()),
        system.into_sensors(),
        ServeConfig { shards: 2, ..ServeConfig::default() },
        smiler_store::shared(store),
    );

    let handle = server.handle();
    let mut expected: Vec<Vec<f64>> = vec![Vec::new(); fleet];
    for r in 0..12 {
        for (s, exp) in expected.iter_mut().enumerate() {
            let v = obs(r, s);
            handle.observe(s, v).expect("absorb");
            exp.push(v);
        }
    }
    server.shutdown();

    let (restored, report) =
        DurableSystem::open(Arc::new(Device::default_gpu()), &dir, store_config(), 0)
            .expect("restart from the drained checkpoint");
    assert_eq!(report.sensors, fleet);
    for (s, exp) in expected.iter().enumerate() {
        let history = restored.system().sensor(s).history();
        assert_eq!(history.len(), 320 + 12, "sensor {s} must resume with served values");
        for (i, v) in exp.iter().enumerate() {
            assert_eq!(
                history[320 + i].to_bits(),
                v.to_bits(),
                "sensor {s} served value {i} must survive bitwise"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The store rung of the recovery ladder: when the in-memory snapshot
/// restore fails, `DurableSystem::recover_all` rebuilds the sensor from
/// the durable checkpoint plus the WAL tail.
#[test]
fn recover_all_reaches_the_store_rung() {
    let dir = tmpdir("ladder");
    let config = SmilerConfig::small_for_tests();
    let (mut durable, _) = DurableSystem::create(
        Arc::new(Device::default_gpu()),
        histories(3, 320),
        config,
        PredictorKind::Aggregation,
        &dir,
        store_config(),
        /* checkpoint_every */ 4,
    )
    .expect("create");
    for r in 0..10 {
        durable.step(1, &round_values(r, 3)).expect("step");
    }

    // Quarantine sensor 1 through the robust path.
    durable.system_mut().sensor_mut(1).inject_fault(smiler_core::FaultKind::PanicOnPredict);
    let results =
        durable.system_mut().predict_all_robust(1, &smiler_core::RequestPolicy::default());
    assert!(results[1].is_err());
    assert_eq!(durable.system().quarantined(), vec![1]);

    // A few more durable rounds while quarantined (the WAL keeps logging
    // and auto-checkpoints keep firing at cadence 4).
    for r in 10..14 {
        durable.step(1, &round_values(r, 3)).expect("step while quarantined");
    }

    // Wreck the in-memory recovery snapshot so the first rung panics and
    // recovery must fall through to the durable checkpoint + WAL tail.
    durable.system_mut().poison_snapshot_for_tests(1);
    let recovered = durable.recover_all().expect("recovery ladder");
    assert_eq!(recovered, vec![1]);
    assert!(durable.system().quarantined().is_empty());
    // The rebuilt sensor carries exactly what the healthy snapshot rung
    // would have produced: the construction history plus the four values
    // observed while quarantined (checkpoint cut + WAL tail), bitwise.
    let history = durable.system().sensor(1).history();
    assert_eq!(history.len(), 320 + 4);
    for (i, r) in (10..14).enumerate() {
        assert_eq!(history[320 + i].to_bits(), obs(r, 1).to_bits());
    }
    // And keeps serving.
    let preds = durable.step(1, &round_values(14, 3)).expect("step after recovery");
    assert!(preds[1].0.is_finite());
    let _ = fs::remove_dir_all(&dir);
}
