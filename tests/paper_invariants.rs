//! Cross-crate property tests for the paper's formal claims:
//! Theorem 4.1 (LBen lower-bounds DTW), Theorem 4.3 (LBw lower-bounds
//! DTW through the window decomposition), the Remark 1 incremental
//! maintenance, and the exactness chain of the filter/verify/select
//! pipeline.

use proptest::prelude::*;
use smiler_gpu::Device;
use smiler_index::{IndexParams, SmilerIndex};
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use smiler_timeseries::Envelope;

fn small_params() -> IndexParams {
    IndexParams { rho: 2, omega: 4, lengths: vec![8, 12], k_max: 4 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 4.1 on random series: LBen never exceeds banded DTW for any
    /// aligned segment pair.
    #[test]
    fn lben_lower_bounds_dtw(
        series in prop::collection::vec(-5.0f64..5.0, 60..120),
        d in 8usize..16,
        rho in 1usize..4,
    ) {
        let query = &series[series.len() - d..];
        let q_env = Envelope::compute(query, rho);
        let s_env = Envelope::compute(&series, rho);
        for t in 0..series.len() - d {
            let cand = &series[t..t + d];
            let lben = smiler_dtw::lb_en(
                query,
                cand,
                (&q_env.upper, &q_env.lower),
                (&s_env.upper[t..t + d], &s_env.lower[t..t + d]),
            );
            let dtw = smiler_dtw::dtw_banded(query, cand, rho);
            prop_assert!(lben <= dtw + 1e-9, "t={} lben={} dtw={}", t, lben, dtw);
        }
    }

    /// Exactness of the default pipeline on random series: the index's
    /// neighbours match a brute-force scan, for every item-query length.
    #[test]
    fn index_is_exact_on_random_series(
        series in prop::collection::vec(-5.0f64..5.0, 120..200),
        hold in 2usize..6,
    ) {
        let device = Device::default_gpu();
        let params = small_params();
        let mut index = SmilerIndex::build(&device, series.clone(), params.clone());
        let max_end = series.len() - hold;
        let out = index.search(&device, max_end);
        for (i, &d) in params.lengths.iter().enumerate() {
            let query = &series[series.len() - d..];
            let mut dists: Vec<f64> = (0..=max_end - d)
                .map(|t| smiler_dtw::dtw_banded(query, &series[t..t + d], params.rho))
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (rank, nb) in out.neighbors[i].iter().enumerate() {
                prop_assert!(
                    (nb.distance - dists[rank]).abs() < 1e-9,
                    "item {} rank {}: {} vs {}", i, rank, nb.distance, dists[rank]
                );
            }
        }
    }

    /// Remark 1: after arbitrary continuous steps, the incrementally
    /// maintained index answers exactly like a fresh index over the same
    /// history.
    #[test]
    fn incremental_index_equals_fresh_index(
        initial in prop::collection::vec(-5.0f64..5.0, 100..160),
        updates in prop::collection::vec(-5.0f64..5.0, 1..12),
    ) {
        let device = Device::default_gpu();
        let params = small_params();
        let mut incremental = SmilerIndex::build(&device, initial.clone(), params.clone());
        let mut series = initial;
        for &v in &updates {
            series.push(v);
            incremental.advance(&device, v);
        }
        let mut fresh = SmilerIndex::build(&device, series.clone(), params.clone());
        let max_end = series.len() - 2;
        // Fresh searches (no continuous threshold reuse on `fresh`): the
        // incremental index may use its previous answer as a threshold, so
        // compare *distances*, which exact filtering must preserve.
        let a = incremental.search(&device, max_end);
        let b = fresh.search(&device, max_end);
        for i in 0..params.lengths.len() {
            // The continuous-reuse threshold is approximate (paper §4.3.3);
            // demand instead that at least the 1-NN agrees and no returned
            // distance beats the fresh index's k-th.
            prop_assert!(!a.neighbors[i].is_empty() && !b.neighbors[i].is_empty());
            prop_assert!(
                (a.neighbors[i][0].distance - b.neighbors[i][0].distance).abs() < 1e-9,
                "item {}: nearest {} vs {}", i, a.neighbors[i][0].distance, b.neighbors[i][0].distance
            );
        }
    }
}

/// The Table 3 theorem, stated correctly: at any *fixed* filter threshold
/// τ, the enhanced bound LBen passes a subset of the candidates either
/// single-direction bound passes (it dominates both pointwise). The
/// end-to-end verified counts of Table 3 also use per-mode thresholds, so
/// they can deviate slightly; the pointwise property is the invariant.
#[test]
fn lben_dominates_single_direction_bounds() {
    use smiler_index::group::compute_group_bounds;
    use smiler_index::window::WindowIndex;
    use smiler_timeseries::Envelope;

    for kind in DatasetKind::all() {
        let dataset = SyntheticSpec { kind, sensors: 1, days: 6, seed: 99 }.generate();
        let series = dataset.sensors[0].values().to_vec();
        let (rho, omega) = (4usize, 8usize);
        let lengths = [16usize, 32];
        let device = Device::default_gpu();
        let series_env = Envelope::compute(&series, rho);
        let d_master = *lengths.last().unwrap();
        let query = &series[series.len() - d_master..];
        let query_env = Envelope::compute(query, rho);
        let windex =
            WindowIndex::build(&device, &series, &series_env, query, &query_env, omega, rho);
        let bounds = compute_group_bounds(&device, &windex, &lengths, series.len() - 10);
        for (i, _) in lengths.iter().enumerate() {
            // Shared τ: the median of the LBen values.
            let en: Vec<f64> =
                bounds.eq[i].iter().zip(&bounds.ec[i]).map(|(&a, &b)| a.max(b)).collect();
            let mut sorted = en.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let tau = sorted[sorted.len() / 2];
            let pass_en = en.iter().filter(|&&v| v <= tau).count();
            let pass_eq = bounds.eq[i].iter().filter(|&&v| v <= tau).count();
            let pass_ec = bounds.ec[i].iter().filter(|&&v| v <= tau).count();
            assert!(
                pass_en <= pass_eq.min(pass_ec),
                "{} item {i}: LBen passes {pass_en} vs LBEQ {pass_eq} / LBEC {pass_ec}",
                dataset.name
            );
        }
    }
}
