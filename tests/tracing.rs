//! Integration tests for request-level tracing and the fleet status
//! surface: every admitted request must yield exactly one terminal trace
//! record (served / shed / faulted) across shards, micro-batching, panics,
//! and shutdown drain — no drops, no duplicates; tracing must not change
//! predictions by a single bit; micro-batch members must share the batch
//! id of their single fleet-search launch; and `status_report` must expose
//! windowed tail latency, rung mix, SLO burn, and per-sensor model
//! quality.

use smiler_core::serve::{ServeConfig, ServeError, SmilerServer};
use smiler_core::{DegradationLevel, FaultKind, PredictorKind, SensorPredictor, SmilerConfig};
use smiler_gpu::Device;
use smiler_obs::trace::{self, validate_trace_line, TraceConfig};
use std::sync::Arc;
use std::time::Duration;

/// The trace sink is process-global: serialise tests that install one and
/// start each from a clean slate.
fn lock_tracing() -> parking_lot::MutexGuard<'static, ()> {
    static GUARD: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    let g = GUARD.lock();
    smiler_obs::reset();
    g
}

fn histories(count: usize, n: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|s| {
            (0..n)
                .map(|i| {
                    let t = (i + s * 13) as f64;
                    (t * std::f64::consts::TAU / 24.0).sin() + 0.05 * (t * 0.7).cos()
                })
                .collect()
        })
        .collect()
}

fn fleet(device: &Arc<Device>, count: usize) -> Vec<SensorPredictor> {
    histories(count, 300)
        .into_iter()
        .enumerate()
        .map(|(id, h)| {
            SensorPredictor::new(
                Arc::clone(device),
                id,
                h,
                SmilerConfig::small_for_tests(),
                PredictorKind::Aggregation,
            )
        })
        .collect()
}

fn field_u64(line: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let rest = &line[line.find(&key)? + key.len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn outcome_of(line: &str) -> &'static str {
    for outcome in ["served", "shed", "fault", "error", "abandoned"] {
        if line.contains(&format!("\"outcome\":\"{outcome}\"")) {
            return outcome;
        }
    }
    panic!("trace line without an outcome: {line}");
}

/// Every submission — admitted, shed at the queue, answered by a fault, or
/// served after a panic quarantined its sensor — must yield exactly one
/// schema-valid terminal trace record. No drops, no duplicates.
#[test]
fn every_request_yields_exactly_one_terminal_trace() {
    let _g = lock_tracing();
    let device = Arc::new(Device::default_gpu());
    let mut sensors = fleet(&device, 4);
    sensors[1].inject_fault(FaultKind::PanicOnPredict);
    let config = ServeConfig {
        shards: 2,
        queue_capacity: 4,
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    trace::install_memory_sink(TraceConfig::default());
    let server = SmilerServer::start(device, sensors, config);
    let handle = server.handle();

    const SUBMITS: usize = 40;
    let mut pending = Vec::new();
    let mut shed = 0u64;
    for i in 0..SUBMITS {
        match handle.submit_forecast(i % 4, 1, None) {
            Ok(p) => pending.push(p),
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    for p in pending {
        let _ = p.wait(); // served or a typed fault — both are terminals
    }
    let stats = server.shutdown();
    let lines = trace::take_memory_lines();
    trace::clear_sink();

    assert_eq!(
        lines.len(),
        SUBMITS,
        "one terminal trace per submission: served {} shed {} faults {}",
        stats.served,
        stats.shed,
        stats.faults
    );
    for line in &lines {
        validate_trace_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
    }
    let mut ids: Vec<u64> =
        lines.iter().map(|l| field_u64(l, "trace_id").expect("trace_id")).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), SUBMITS, "trace ids must be unique");

    // The terminal outcomes partition the submissions exactly as the
    // serving counters do.
    let count = |o: &str| lines.iter().filter(|l| outcome_of(l) == o).count() as u64;
    assert_eq!(count("served"), stats.served);
    assert_eq!(count("shed"), stats.shed);
    assert_eq!(count("fault"), stats.faults);
    assert_eq!(count("error") + count("abandoned"), 0);
    assert_eq!(stats.shed, shed);
    assert!(stats.faults > 0, "the panicking sensor must surface faults");
    // The panic itself is flagged on its trace.
    assert!(
        lines.iter().any(|l| l.contains("\"aborted\":true") && l.contains("\"reason\":\"panic\"")),
        "the quarantining panic must be visible in the trace stream"
    );
}

/// Tracing must never change what is predicted: the same fleet served with
/// a sink installed and without one answers bitwise-identical forecasts.
#[test]
fn tracing_does_not_change_predictions() {
    let _g = lock_tracing();
    let run = |traced: bool| -> Vec<(u64, u64)> {
        if traced {
            trace::install_memory_sink(TraceConfig::default());
        }
        let device = Arc::new(Device::default_gpu());
        let sensors = fleet(&device, 3);
        let config = ServeConfig {
            shards: 1,
            queue_capacity: 16,
            max_batch: 1, // sequential, deterministic serving order
            batch_window: Duration::ZERO,
            ..ServeConfig::default()
        };
        let server = SmilerServer::start(device, sensors, config);
        let handle = server.handle();
        let mut bits = Vec::new();
        for step in 0..5 {
            for s in 0..3 {
                let p = handle.forecast(s, 1).expect("served");
                bits.push((p.mean.to_bits(), p.variance.to_bits()));
                handle.observe(s, (step as f64 * 0.4).sin()).expect("absorbed");
            }
        }
        server.shutdown();
        if traced {
            let lines = trace::take_memory_lines();
            trace::clear_sink();
            assert_eq!(lines.len(), 15, "the traced run must still record its terminals");
        }
        bits
    };
    let plain = run(false);
    let traced = run(true);
    assert_eq!(plain, traced, "tracing must be bitwise invisible to predictions");
}

/// Requests coalesced into one micro-batch share one batch id — the link
/// from member traces to their single fleet-search launch — and carry the
/// batch-search milestones.
#[test]
fn batched_members_share_a_batch_id() {
    let _g = lock_tracing();
    let device = Arc::new(Device::default_gpu());
    let sensors = fleet(&device, 4);
    let config = ServeConfig {
        shards: 1,
        queue_capacity: 16,
        max_batch: 8,
        batch_window: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    trace::install_memory_sink(TraceConfig::default());
    let server = SmilerServer::start(device, sensors, config);
    let handle = server.handle();
    let pending: Vec<_> =
        (0..4).map(|s| handle.submit_forecast(s, 1, None).expect("queue has room")).collect();
    for p in pending {
        p.wait().expect("served");
    }
    server.shutdown();
    let lines = trace::take_memory_lines();
    trace::clear_sink();

    assert_eq!(lines.len(), 4);
    let batch_ids: Vec<u64> = lines
        .iter()
        .map(|l| field_u64(l, "batch_id").expect("served trace has batch_id"))
        .collect();
    assert!(
        batch_ids.iter().all(|&id| id == batch_ids[0]),
        "concurrent requests must coalesce into one batch: {batch_ids:?}"
    );
    for line in &lines {
        validate_trace_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(field_u64(line, "batch_size"), Some(4));
        assert!(line.contains("batch_search.start") && line.contains("batch_search.done"));
        assert!(line.contains("\"l\":\"dequeue\""), "members must carry the dequeue milestone");
    }
}

/// The status report exposes windowed tail latency (ordered quantiles),
/// the per-rung breakdown, SLO burn against the configured target, and
/// per-sensor rolling model quality fed by observations.
#[test]
fn status_report_exposes_windowed_tails_and_quality() {
    let _g = lock_tracing();
    let device = Arc::new(Device::default_gpu());
    let sensors = fleet(&device, 4);
    let config = ServeConfig {
        shards: 2,
        queue_capacity: 16,
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        // A zero-latency target: every served request burns error budget,
        // so the burn rate must read positive.
        slo_target: Duration::ZERO,
        slo_budget: 0.5,
        ..ServeConfig::default()
    };
    let server = SmilerServer::start(device, sensors, config);
    let handle = server.handle();

    for step in 0..3 {
        for s in 0..4 {
            handle.forecast(s, 1).expect("served");
            handle.observe(s, (step as f64 * 0.7).cos()).expect("absorbed");
        }
    }
    // An already-expired budget forces the last-value rung.
    for s in 0..4 {
        let p = handle.forecast_with_deadline(s, 1, Duration::ZERO).expect("served degraded");
        assert_eq!(p.level, DegradationLevel::LastValue);
    }

    let report = handle.status_report();
    server.shutdown();

    assert_eq!(report.fleet, 4);
    assert_eq!(report.shards, 2);
    assert_eq!(report.queue_depths.len(), 2);
    assert_eq!(report.stats.served, 16);
    assert_eq!(report.stats.observed, 12);

    let q = report.latency;
    assert_eq!(q.count, 16);
    assert!(q.p50 > 0.0);
    assert!(
        q.p50 <= q.p95 && q.p95 <= q.p99 && q.p99 <= q.p999,
        "quantiles must be ordered: {q:?}"
    );

    let rung = |level: DegradationLevel| {
        report.latency_by_rung.iter().find(|r| r.rung == level).expect("all rungs are reported")
    };
    assert_eq!(rung(DegradationLevel::FullEnsemble).served, 12);
    assert_eq!(rung(DegradationLevel::LastValue).served, 4);
    assert!(rung(DegradationLevel::FullEnsemble).latency.p50 > 0.0);

    assert_eq!(report.slo.target_ms, 0.0);
    assert_eq!(report.slo.violations, 16, "a zero target makes every request a violation");
    assert!(report.slo.burn_rate > 0.0);

    // No store attached: durability telemetry is absent, not zeroed.
    assert!(report.wal_append.is_none());
    assert!(report.store.is_none());

    // Each sensor saw h=1 forecasts scored by the following observation.
    assert_eq!(report.sensors.len(), 4);
    for row in &report.sensors {
        assert!(!row.quarantined);
        assert_eq!(row.served, 4);
        assert!(row.quality.window >= 1, "sensor {} quality never scored", row.sensor);
        assert!(row.quality.mae.is_finite());
        assert_eq!(row.last_rung, Some(DegradationLevel::LastValue));
    }

    // The human status line mentions the essentials.
    let line = report.render_line();
    for needle in ["smiler up", "served 16", "p95", "slo", "rungs", "full_ensemble:12"] {
        assert!(line.contains(needle), "status line missing `{needle}`: {line}");
    }
}
