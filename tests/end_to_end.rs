//! End-to-end integration: the full SMiLer pipeline against brute-force
//! references and baseline models on synthetic sensor data.

#![allow(clippy::needless_range_loop)] // time-indexed evaluation loops

use smiler_baselines::lazyknn::{LazyKnn, LazyKnnConfig};
use smiler_baselines::SeriesPredictor;
use smiler_core::eval::{evaluate, EvalConfig};
use smiler_core::sensor::{SmilerConfig, SmilerForecaster};
use smiler_core::{PredictorKind, SmilerSystem};
use smiler_gpu::Device;
use smiler_index::{IndexParams, Neighbor, SmilerIndex};
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::Arc;

fn road_sensor(days: usize, seed: u64) -> Vec<f64> {
    SyntheticSpec { kind: DatasetKind::Road, sensors: 1, days, seed }
        .generate()
        .sensors
        .remove(0)
        .values()
        .to_vec()
}

fn brute_force_knn(
    series: &[f64],
    d: usize,
    rho: usize,
    k: usize,
    max_end: usize,
) -> Vec<Neighbor> {
    let query = &series[series.len() - d..];
    let mut all: Vec<Neighbor> = (0..=max_end - d)
        .map(|t| Neighbor {
            start: t,
            distance: smiler_dtw::dtw_banded(query, &series[t..t + d], rho),
        })
        .collect();
    all.sort_by(|a, b| a.distance.partial_cmp(&b.distance).unwrap().then(a.start.cmp(&b.start)));
    all.truncate(k);
    all
}

/// The index with paper-default parameters returns exactly the brute-force
/// kNN on realistic sensor data.
#[test]
fn index_matches_brute_force_on_road_data() {
    let series = road_sensor(12, 1);
    let device = Device::default_gpu();
    let params = IndexParams::default(); // ρ=8, ω=16, ELV={32,64,96}, k=32
    let mut index = SmilerIndex::build(&device, series.clone(), params.clone());
    let max_end = series.len() - 30;
    let out = index.search(&device, max_end);
    for (i, &d) in params.lengths.iter().enumerate() {
        let expect = brute_force_knn(&series, d, params.rho, params.k_max, max_end);
        assert_eq!(out.neighbors[i].len(), expect.len());
        for (got, want) in out.neighbors[i].iter().zip(&expect) {
            assert!(
                (got.distance - want.distance).abs() < 1e-9,
                "d={d}: got {got:?} want {want:?}"
            );
        }
    }
}

/// Index filtering must reject the vast majority of candidates on
/// realistic data (Table 3's premise).
#[test]
fn filtering_prunes_most_candidates_on_road_data() {
    let series = road_sensor(12, 2);
    let device = Device::default_gpu();
    let mut index = SmilerIndex::build(&device, series.clone(), IndexParams::default());
    let out = index.search(&device, series.len() - 30);
    // Short item queries have at most ⌊d/ω⌋ = 2 windows, so their bound is
    // inherently weaker; the pruning requirement tightens with length. The
    // bounds leave headroom over the observed ratios (≈0.85/0.55/0.29 with
    // the vendored deterministic RNG's road stream) because pruning power
    // swings with the data realisation, not just its distribution.
    let max_fraction = [0.95, 0.7, 0.4];
    for (i, (&cand, &unf)) in out.stats.candidates.iter().zip(&out.stats.unfiltered).enumerate() {
        assert!(
            (unf as f64) < cand as f64 * max_fraction[i],
            "item {i}: verified {unf} of {cand} candidates"
        );
    }
}

/// SMiLer-GP must beat the plain lazy kNN baseline on dynamic traffic data
/// — the paper's headline accuracy claim, at reduced scale.
#[test]
fn smiler_gp_beats_lazyknn_on_road() {
    let series = road_sensor(18, 3);
    let config = EvalConfig { horizons: vec![1, 5, 10], steps: 50 };

    let device = Arc::new(Device::default_gpu());
    let mut smiler = SmilerForecaster::gp(device, SmilerConfig { h_max: 10, ..Default::default() });
    let smiler_result = evaluate(&mut smiler, &series, &config);

    let mut lazy = LazyKnn::new(LazyKnnConfig { window: 32, k: 16, rho: 8, bootstrap: None });
    let lazy_result = evaluate(&mut lazy, &series, &config);

    let smiler_avg: f64 = smiler_result.mae.values().sum::<f64>() / 3.0;
    let lazy_avg: f64 = lazy_result.mae.values().sum::<f64>() / 3.0;
    assert!(
        smiler_avg < lazy_avg * 1.05,
        "SMiLer-GP MAE {smiler_avg:.3} should not trail LazyKNN {lazy_avg:.3}"
    );
    // And its uncertainty must be better calibrated (lower MNLPD).
    let smiler_nlpd: f64 = smiler_result.mnlpd.values().sum::<f64>() / 3.0;
    let lazy_nlpd: f64 = lazy_result.mnlpd.values().sum::<f64>() / 3.0;
    assert!(
        smiler_nlpd < lazy_nlpd + 0.5,
        "SMiLer-GP MNLPD {smiler_nlpd:.3} vs LazyKNN {lazy_nlpd:.3}"
    );
}

/// Multi-sensor system: predictions stay finite and device memory is
/// accounted across a whole continuous run.
#[test]
fn multi_sensor_system_runs_continuously() {
    let dataset = SyntheticSpec { kind: DatasetKind::Net, sensors: 3, days: 6, seed: 4 }.generate();
    let steps = 12;
    let histories: Vec<Vec<f64>> =
        dataset.sensors.iter().map(|s| s.values()[..s.len() - steps].to_vec()).collect();
    let device = Arc::new(Device::default_gpu());
    let (mut system, rejected) = SmilerSystem::new(
        Arc::clone(&device),
        histories,
        SmilerConfig { h_max: 5, ..Default::default() },
        PredictorKind::Aggregation,
    );
    assert!(rejected.is_none());
    assert_eq!(system.resident_bytes(), device.memory_used());

    for step in 0..steps {
        let preds = system.predict_all(1);
        assert!(preds.iter().all(|(m, v)| m.is_finite() && *v > 0.0), "step {step}");
        let arrivals: Vec<f64> =
            dataset.sensors.iter().map(|s| s.values()[s.len() - steps + step]).collect();
        system.observe_all(&arrivals);
    }
    assert!(device.elapsed_seconds() > 0.0, "searches must cost simulated time");
}

/// The ensemble auto-tuner adapts: after enough steps on data favouring
/// short segments, weight mass must shift away from the uniform start.
#[test]
fn auto_tuning_shifts_weight_mass() {
    let series = road_sensor(15, 5);
    let steps = 30;
    let split = series.len() - steps;
    let device = Arc::new(Device::default_gpu());
    let mut forecaster =
        SmilerForecaster::ar(device, SmilerConfig { h_max: 3, ..Default::default() });
    forecaster.train(&series[..split]);
    for t in split..series.len() - 3 {
        forecaster.predict(1);
        forecaster.observe(series[t]);
    }
    // Reach into the adapter's predictor through its public API.
    let (mean, var) = forecaster.predict(1);
    assert!(mean.is_finite() && var > 0.0);
}
