//! Integration tests for the sharded serving frontend (`smiler_core::serve`):
//! micro-batched serving must answer exactly what per-sensor serving
//! answers while spending strictly fewer simulated GPU launches; a
//! saturated queue must shed typed errors while everything already
//! admitted completes; a quarantined sensor must never stall its shard;
//! and shutdown must drain cleanly.

use smiler_core::serve::{LoadGen, ServeConfig, ServeError, SmilerServer};
use smiler_core::{
    DegradationLevel, FaultKind, PredictorKind, RequestPolicy, SensorFault, SensorPredictor,
    SmilerConfig,
};
use smiler_gpu::Device;
use std::sync::Arc;
use std::time::Duration;

fn histories(count: usize, n: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|s| {
            (0..n)
                .map(|i| {
                    let t = (i + s * 13) as f64;
                    (t * std::f64::consts::TAU / 24.0).sin() + 0.05 * (t * 0.7).cos()
                })
                .collect()
        })
        .collect()
}

fn fleet(device: &Arc<Device>, count: usize) -> Vec<SensorPredictor> {
    histories(count, 300)
        .into_iter()
        .enumerate()
        .map(|(id, h)| {
            SensorPredictor::new(
                Arc::clone(device),
                id,
                h,
                SmilerConfig::small_for_tests(),
                PredictorKind::Aggregation,
            )
        })
        .collect()
}

/// Micro-batched serving answers bitwise what solo prediction answers, and
/// at ≥ 2 shards the batched run spends strictly fewer simulated GPU
/// launches than serving the same trace per request.
#[test]
fn batched_serving_matches_sequential_with_fewer_launches() {
    const SENSORS: usize = 6;

    // Batched run: all requests queued before the batch window closes.
    let device = Arc::new(Device::default_gpu());
    let sensors = fleet(&device, SENSORS);
    device.reset_clock();
    let config = ServeConfig {
        shards: 2,
        queue_capacity: 64,
        max_batch: 8,
        batch_window: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let server = SmilerServer::start(Arc::clone(&device), sensors, config);
    let handle = server.handle();
    let pending: Vec<_> =
        (0..SENSORS).map(|s| handle.submit_forecast(s, 1, None).expect("queue has room")).collect();
    let served: Vec<_> = pending.into_iter().map(|p| p.wait().expect("served")).collect();
    let stats = server.shutdown();
    let batched_launches = device.kernel_launches();

    assert_eq!(stats.served, SENSORS as u64);
    assert_eq!(stats.batched_forecasts, SENSORS as u64);
    assert!(
        stats.batches < stats.batched_forecasts,
        "requests queued concurrently must coalesce: {} batches for {} forecasts",
        stats.batches,
        stats.batched_forecasts
    );

    // Sequential reference: the same fleet served one sensor at a time.
    let solo_device = Arc::new(Device::default_gpu());
    let mut solo = fleet(&solo_device, SENSORS);
    solo_device.reset_clock();
    let policy = RequestPolicy::default();
    for (s, sensor) in solo.iter_mut().enumerate() {
        let expect = sensor.try_predict_with(1, &policy).expect("solo predict");
        let got = &served[s];
        assert_eq!(got.mean.to_bits(), expect.mean.to_bits(), "sensor {s} mean");
        assert_eq!(got.variance.to_bits(), expect.variance.to_bits(), "sensor {s} variance");
        assert_eq!(got.level, DegradationLevel::FullEnsemble, "sensor {s} rung");
        assert!(!got.deadline_missed);
    }
    let solo_launches = solo_device.kernel_launches();
    assert!(
        batched_launches < solo_launches,
        "micro-batching must amortise launches: batched {batched_launches} vs solo {solo_launches}"
    );
}

/// Saturating a shard's queue sheds requests with a typed `Overloaded`
/// error — mapped onto the degradation ladder — while every admitted
/// request still completes. No panics, no deadlocks, no lost replies.
#[test]
fn overload_sheds_typed_errors_while_admitted_requests_complete() {
    let device = Arc::new(Device::default_gpu());
    let sensors = fleet(&device, 4);
    let config = ServeConfig {
        shards: 1,
        queue_capacity: 2,
        max_batch: 2,
        batch_window: Duration::from_millis(1),
        ..ServeConfig::default()
    };
    let server = SmilerServer::start(device, sensors, config);
    let handle = server.handle();

    let mut admitted = Vec::new();
    let mut sheds = 0usize;
    for i in 0..10_000 {
        match handle.submit_forecast(i % 4, 1, None) {
            Ok(pending) => admitted.push(pending),
            Err(err) => {
                let ServeError::Overloaded { shard, depth, capacity } = &err else {
                    panic!("expected Overloaded, got {err}");
                };
                assert_eq!(*shard, 0);
                assert_eq!(*capacity, 2);
                assert!(*depth <= *capacity);
                assert_eq!(err.shed_level(), Some(DegradationLevel::LastValue));
                sheds += 1;
                if sheds >= 3 {
                    break;
                }
            }
        }
    }
    assert!(sheds >= 3, "a 2-deep queue under a tight submit loop must shed");

    let total = admitted.len();
    let served = admitted.into_iter().map(|p| p.wait()).collect::<Vec<_>>();
    assert!(served.iter().all(|r| r.is_ok()), "every admitted request completes");
    let stats = server.shutdown();
    assert_eq!(stats.served, total as u64);
    assert!(stats.shed >= sheds as u64);
}

/// A sensor that panics is quarantined shard-locally: it answers typed
/// faults from then on while its shard keeps serving every other sensor.
#[test]
fn quarantined_sensor_never_stalls_its_shard() {
    let device = Arc::new(Device::default_gpu());
    let mut sensors = fleet(&device, 4);
    sensors[0].inject_fault(FaultKind::PanicOnPredict);
    let config = ServeConfig { shards: 2, queue_capacity: 16, ..ServeConfig::default() };
    let server = SmilerServer::start(device, sensors, config);
    let handle = server.handle();

    // The first request trips the panic and quarantines sensor 0.
    match handle.forecast(0, 1) {
        Err(ServeError::Fault(SensorFault::Panicked { .. })) => {}
        other => panic!("expected a panic fault, got {other:?}"),
    }
    // Its shard-mate (sensor 2 also lives on shard 0) keeps being served.
    let p = handle.forecast(2, 1).expect("healthy shard-mate served");
    assert!(p.mean.is_finite());
    // The quarantined sensor now answers a typed quarantine fault at once.
    match handle.forecast(0, 1) {
        Err(ServeError::Fault(SensorFault::Quarantined { .. })) => {}
        other => panic!("expected quarantine, got {other:?}"),
    }
    match handle.observe(0, 0.5) {
        Err(ServeError::Fault(SensorFault::Quarantined { .. })) => {}
        other => panic!("expected quarantine on observe, got {other:?}"),
    }
    // A mixed batch: the quarantined sensor faults, the healthy one serves.
    let bad = handle.submit_forecast(0, 1, None).expect("admitted");
    let good = handle.submit_forecast(2, 1, None).expect("admitted");
    assert!(matches!(bad.wait(), Err(ServeError::Fault(_))));
    assert!(good.wait().is_ok());
    handle.observe(2, 0.5).expect("healthy observe");

    let stats = server.shutdown();
    assert!(stats.faults >= 3);
    assert_eq!(stats.observed, 1);
}

/// Shutdown drains: everything already queued completes with a real
/// answer, then late requests get a typed `ShuttingDown`.
#[test]
fn shutdown_drains_queued_requests_cleanly() {
    const SENSORS: usize = 6;
    let device = Arc::new(Device::default_gpu());
    let sensors = fleet(&device, SENSORS);
    let config = ServeConfig {
        shards: 2,
        queue_capacity: 64,
        batch_window: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let server = SmilerServer::start(device, sensors, config);
    let handle = server.handle();
    let pending: Vec<_> =
        (0..SENSORS).map(|s| handle.submit_forecast(s, 1, None).expect("queue has room")).collect();
    let stats = server.shutdown();
    assert_eq!(stats.served, SENSORS as u64, "drain serves everything queued");
    for p in pending {
        let served = p.wait().expect("queued request completed during drain");
        assert!(served.mean.is_finite());
    }
    // Workers are gone: the leftover handle gets a typed shutdown error.
    assert!(matches!(handle.forecast(0, 1), Err(ServeError::ShuttingDown)));
    assert!(matches!(handle.observe(0, 0.5), Err(ServeError::ShuttingDown)));
}

/// Deadlines are measured from submission: a request whose budget is
/// already gone when a worker picks it up degrades to the last-value hold
/// instead of blowing the budget, and is flagged.
#[test]
fn exhausted_deadline_degrades_to_last_value() {
    let device = Arc::new(Device::default_gpu());
    let sensors = fleet(&device, 2);
    let server = SmilerServer::start(device, sensors, ServeConfig::default());
    let handle = server.handle();
    let served = handle.forecast_with_deadline(0, 1, Duration::ZERO).expect("still served");
    assert_eq!(served.level, DegradationLevel::LastValue);
    assert!(served.deadline_missed);
    assert!(served.mean.is_finite());
    let stats = server.shutdown();
    assert_eq!(stats.timeouts, 1);
}

/// Requests outside the fleet are rejected at the handle, typed.
#[test]
fn unknown_sensor_is_rejected_at_admission() {
    let device = Arc::new(Device::default_gpu());
    let sensors = fleet(&device, 2);
    let server = SmilerServer::start(device, sensors, ServeConfig::default());
    let handle = server.handle();
    assert!(matches!(
        handle.forecast(7, 1),
        Err(ServeError::UnknownSensor { sensor: 7, fleet: 2 })
    ));
    server.shutdown();
}

/// The closed-loop load generator accounts for every request it issues.
#[test]
fn load_generator_accounts_for_every_request() {
    let device = Arc::new(Device::default_gpu());
    let sensors = fleet(&device, 4);
    let server = SmilerServer::start(device, sensors, ServeConfig::default());
    let handle = server.handle();
    let gen = LoadGen {
        clients: 3,
        requests_per_client: 5,
        horizon: 1,
        qps: Some(500.0),
        deadline: Some(Duration::from_secs(5)),
    };
    let report = smiler_core::serve::run_load(&handle, &gen);
    server.shutdown();
    assert_eq!(report.requests, 15);
    assert_eq!(report.ok + report.shed + report.errors, 15);
    assert!(report.ok > 0);
    assert!(report.latency_p95_ms >= report.latency_p50_ms);
    assert!(report.latency_max_ms >= report.latency_p99_ms);
}
