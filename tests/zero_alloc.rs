//! Proof that the steady-state hot paths are allocation-free: a counting
//! global allocator watches the DTW-verify primitives and the shared-prefix
//! GP predict loop after one warm-up pass has grown every scratch buffer.
//!
//! One test function on purpose: libtest runs `#[test]`s on parallel
//! threads, which would make the global allocation counter ambiguous.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use smiler_dtw::DtwScratch;
use smiler_gp::{GpScratch, Hyperparams, PrefixGp};
use smiler_linalg::Matrix;
use smiler_timeseries::{Envelope, EnvelopeScratch};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn pseudo_series(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (i as f64 * 0.13).sin() * 2.0 + (state % 100) as f64 / 100.0
        })
        .collect()
}

fn count_allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_hot_loops_do_not_allocate() {
    smiler_obs::set_enabled(false);

    // --- DTW verify loop: envelope + lower bounds + (early-abandoning)
    //     banded DTW, all through reused workspaces. ---
    let series = pseudo_series(512, 3);
    let d = 96;
    let rho = 8;
    let query = &series[series.len() - d..];
    let mut env = Envelope::compute(query, rho);
    let mut env_scratch = EnvelopeScratch::new();
    let mut dtw_scratch = DtwScratch::with_rho(rho);
    let mut sink = 0.0f64;
    let mut verify_pass = |sink: &mut f64| {
        env.compute_into(query, rho, &mut env_scratch);
        for t in (0..series.len() - d).step_by(7) {
            let cand = &series[t..t + d];
            *sink += smiler_dtw::lb_kim_fl(query, cand);
            *sink += smiler_dtw::lb_keogh(cand, &env.upper, &env.lower);
            *sink += smiler_dtw::dtw_compressed_with(query, cand, rho, &mut dtw_scratch);
            let (dist, _cells) =
                smiler_dtw::dtw_early_abandon_counted_with(query, cand, rho, 5.0, &mut dtw_scratch);
            *sink += dist.unwrap_or(0.0);
        }
    };
    verify_pass(&mut sink); // warm-up grows every buffer
    let delta = count_allocations(|| {
        for _ in 0..20 {
            verify_pass(&mut sink);
        }
    });
    assert_eq!(delta, 0, "DTW verify loop allocated {delta} times in steady state");

    // --- Shared-prefix GP predict loop: one factorisation serves every
    //     prefix k, each prediction two in-place triangular solves. ---
    let k_max = 24;
    let cols = 8;
    let x = Matrix::from_fn(k_max, cols, |i, j| ((i * cols + j) as f64 * 0.37).sin());
    let y: Vec<f64> = (0..k_max).map(|i| (i as f64 * 0.51).cos()).collect();
    let x0: Vec<f64> = (0..cols).map(|j| (j as f64 * 0.21).sin()).collect();
    let pg = PrefixGp::fit(x, Hyperparams::new(1.0, 1.4, 0.1)).expect("well-conditioned inputs");
    assert!(pg.exact(), "the zero-allocation claim covers the exact prefix path");
    let mut gp_scratch = GpScratch::new();
    let mut centred = vec![0.0f64; k_max];
    let mut predict_pass = |sink: &mut f64| {
        for k in 1..=k_max {
            let mean_k = y[..k].iter().sum::<f64>() / k as f64;
            for (c, v) in centred[..k].iter_mut().zip(&y[..k]) {
                *c = v - mean_k;
            }
            let (mean, var) = pg.predict_prefix(k, &centred[..k], &x0, &mut gp_scratch);
            *sink += mean + var;
        }
    };
    predict_pass(&mut sink); // warm-up
    let delta = count_allocations(|| {
        for _ in 0..50 {
            predict_pass(&mut sink);
        }
    });
    assert_eq!(delta, 0, "GP predict loop allocated {delta} times in steady state");

    assert!(sink.is_finite(), "keep the computations observable");
}
