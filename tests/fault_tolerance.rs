//! Fault-injection tests for the fleet's isolation and graceful-degradation
//! layer: one poisoned sensor (NaN history, non-PD Gram matrix, or an
//! injected worker panic) must never change a healthy sensor's forecast or
//! take the fleet down, and the poisoned sensor must come back through
//! typed errors, degraded rungs, and snapshot recovery.

use smiler_core::{
    DegradationLevel, FaultKind, PredictorKind, RequestPolicy, SensorFault, SensorHealth,
    SensorPredictor, SmilerConfig, SmilerSystem,
};
use smiler_gpu::Device;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

fn lock_obs() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    smiler_obs::reset();
    smiler_obs::set_enabled(true);
    g
}

fn histories(count: usize, n: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|s| {
            (0..n)
                .map(|i| {
                    let t = (i + s * 13) as f64;
                    (t * std::f64::consts::TAU / 24.0).sin() + 0.05 * (t * 0.7).cos()
                })
                .collect()
        })
        .collect()
}

fn fleet(count: usize, kind: PredictorKind) -> SmilerSystem {
    let (system, rejected) = SmilerSystem::new(
        Arc::new(Device::default_gpu()),
        histories(count, 300),
        SmilerConfig::small_for_tests(),
        kind,
    );
    assert!(rejected.is_none());
    system
}

/// An injected worker panic quarantines exactly the faulty sensor; every
/// healthy sensor's forecast is bitwise identical to a fault-free run.
#[test]
fn worker_panic_quarantines_one_sensor_not_the_fleet() {
    let _g = lock_obs();
    let mut healthy = fleet(5, PredictorKind::Aggregation);
    let mut faulty = fleet(5, PredictorKind::Aggregation);
    faulty.sensor_mut(2).inject_fault(FaultKind::PanicOnPredict);

    let expected = healthy.predict_all_parallel(1);
    let got = faulty.predict_all_robust(1, &RequestPolicy::default());
    assert_eq!(got.len(), 5);
    for (i, r) in got.iter().enumerate() {
        if i == 2 {
            assert!(matches!(r, Err(SensorFault::Panicked { .. })), "sensor 2: {r:?}");
        } else {
            let p = r.as_ref().expect("healthy sensor must predict");
            assert_eq!(p.mean.to_bits(), expected[i].0.to_bits(), "sensor {i} mean changed");
            assert_eq!(p.variance.to_bits(), expected[i].1.to_bits(), "sensor {i} var changed");
            assert!(!p.degraded());
        }
    }
    assert_eq!(faulty.quarantined(), vec![2]);
    assert!(matches!(faulty.health(2), SensorHealth::Quarantined { .. }));

    // A second pass skips the quarantined sensor without re-running it,
    // and the healthy sensors stay bitwise in lockstep.
    let expected = healthy.predict_all_parallel(2);
    let got = faulty.predict_all_robust(2, &RequestPolicy::default());
    for (i, r) in got.iter().enumerate() {
        if i == 2 {
            assert!(matches!(r, Err(SensorFault::Quarantined { .. })), "sensor 2: {r:?}");
        } else {
            let p = r.as_ref().expect("healthy sensor must predict");
            assert_eq!(p.mean.to_bits(), expected[i].0.to_bits(), "sensor {i} mean changed");
        }
    }

    // Observability: the quarantine is exported.
    let snap = smiler_obs::metrics_snapshot();
    let panics =
        snap.counters.iter().find(|c| c.name == "health.sensor_panic").map_or(0, |c| c.value);
    assert!(panics >= 1, "sensor panic counter must be nonzero");
    let gauge = snap.gauges.iter().find(|g| g.name == "health.quarantined");
    assert_eq!(gauge.map(|g| g.value), Some(1.0));
}

/// The NaN marker of the infallible parallel API: healthy sensors keep
/// their forecasts, the faulty slot reports `(NaN, ∞)`.
#[test]
fn predict_all_parallel_survives_a_panicking_sensor() {
    let mut healthy = fleet(4, PredictorKind::Aggregation);
    let mut faulty = fleet(4, PredictorKind::Aggregation);
    faulty.sensor_mut(0).inject_fault(FaultKind::PanicOnPredict);
    let expected = healthy.predict_all_parallel(1);
    let got = faulty.predict_all_parallel(1);
    assert!(got[0].0.is_nan() && got[0].1.is_infinite());
    for i in 1..4 {
        assert_eq!(got[i].0.to_bits(), expected[i].0.to_bits(), "sensor {i}");
        assert_eq!(got[i].1.to_bits(), expected[i].1.to_bits(), "sensor {i}");
    }
}

/// A quarantined sensor's snapshot keeps absorbing the fleet's
/// observations, so recovery rebuilds it with a current history and the
/// sensor serves again.
#[test]
fn quarantined_sensor_recovers_from_snapshot_with_current_history() {
    let mut system = fleet(3, PredictorKind::Aggregation);
    system.sensor_mut(1).inject_fault(FaultKind::PanicOnPredict);
    let _ = system.predict_all_robust(1, &RequestPolicy::default());
    assert_eq!(system.quarantined(), vec![1]);

    let len_before = system.sensor_mut(1).history().len();
    for i in 0..5 {
        system.observe_all(&[0.1 * i as f64, 0.2, 0.3]);
    }
    assert_eq!(system.recover_all(), vec![1]);
    assert!(system.quarantined().is_empty());
    // The rebuilt sensor saw the observations that arrived while fenced.
    assert_eq!(system.sensor_mut(1).history().len(), len_before + 5);
    // And it serves again — the injected fault died with the old instance.
    let got = system.predict_all_robust(1, &RequestPolicy::default());
    assert!(got.iter().all(|r| r.is_ok()));
}

/// A non-PD Gram matrix (injected via non-finite hyperparameters) is a
/// degradable fault: the sensor serves an aggregation fallback instead of
/// panicking, healthy sensors are unaffected, and repeated failures trip
/// the cooldown rung.
#[test]
fn bad_gram_degrades_and_trips_cooldown() {
    let _g = lock_obs();
    let mut healthy = fleet(3, PredictorKind::GaussianProcess);
    let mut faulty = fleet(3, PredictorKind::GaussianProcess);
    faulty.sensor_mut(1).inject_fault(FaultKind::BadGram);

    let expected = healthy.predict_all_parallel(1);
    let got = faulty.predict_all_robust(1, &RequestPolicy::default());
    for (i, r) in got.iter().enumerate() {
        let p = r.as_ref().expect("bad Gram must degrade, not fail");
        assert!(p.mean.is_finite() && p.variance > 0.0, "sensor {i}");
        if i != 1 {
            assert_eq!(p.mean.to_bits(), expected[i].0.to_bits(), "sensor {i} mean changed");
        }
    }
    assert!(faulty.quarantined().is_empty(), "degradable faults must not quarantine");
    let errors = faulty.sensor_mut(1).error_state();
    assert!(errors.total_gp_failures > 0, "GP failures must be recorded");

    // Three consecutive failing steps (the default threshold) park the
    // sensor on the aggregation rung for the cooldown.
    let policy = RequestPolicy::default();
    for step in 0..3 {
        faulty.observe_all(&[0.1, 0.2, 0.3]);
        let _ = faulty.predict_all_robust(1, &policy);
        let _ = step;
    }
    assert!(faulty.sensor_mut(1).error_state().cooling_down(), "cooldown must be armed");
    faulty.observe_all(&[0.1, 0.2, 0.3]);
    let got = faulty.predict_all_robust(1, &policy);
    let p = got[1].as_ref().expect("cooldown serves degraded, not error");
    assert_eq!(p.level, DegradationLevel::Aggregation);
    assert!(p.degraded());

    let snap = smiler_obs::metrics_snapshot();
    let gp_failures =
        snap.counters.iter().find(|c| c.name == "health.gp_failure").map_or(0, |c| c.value);
    assert!(gp_failures > 0, "gp failure counter must be nonzero");
    let degraded: u64 =
        snap.counters.iter().filter(|c| c.name == "health.degraded").map(|c| c.value).sum();
    assert!(degraded > 0, "degradation counter must be nonzero");
}

/// A NaN observation poisons the query suffix: the sensor serves the
/// last-value hold (typed, finite) instead of panicking, and recovers on
/// its own once the NaN leaves the master window.
#[test]
fn nan_observation_degrades_to_last_value_hold() {
    let device = Arc::new(Device::default_gpu());
    let history = histories(1, 300).remove(0);
    let mut p = SensorPredictor::new(
        device,
        0,
        history,
        SmilerConfig::small_for_tests(),
        PredictorKind::Aggregation,
    );
    p.observe(f64::NAN);
    let pred = p.try_predict(1).expect("NaN history must degrade, not error");
    assert_eq!(pred.level, DegradationLevel::LastValue);
    assert!(pred.mean.is_finite() && pred.variance > 0.0);
    assert!(p.error_state().total_search_errors > 0);

    // Healthy values push the NaN out of the query suffix; the sensor
    // climbs back to the full pipeline without intervention.
    let mut recovered = false;
    for i in 0..200 {
        p.observe((i as f64 * std::f64::consts::TAU / 24.0).sin());
        if let Ok(pred) = p.try_predict(1) {
            if pred.level == DegradationLevel::FullEnsemble {
                recovered = true;
                break;
            }
        }
    }
    assert!(recovered, "sensor must climb back to the full pipeline");
}

/// The deadline ladder: an exhausted budget at entry buys only the
/// last-value hold; a forced entry level is honoured; the default policy
/// reports the full pipeline.
#[test]
fn deadline_and_entry_level_drive_the_ladder() {
    let device = Arc::new(Device::default_gpu());
    let history = histories(1, 300).remove(0);
    let mut p = SensorPredictor::new(
        device,
        0,
        history,
        SmilerConfig::small_for_tests(),
        PredictorKind::GaussianProcess,
    );

    let full = p.try_predict(1).expect("healthy predict");
    assert_eq!(full.level, DegradationLevel::FullEnsemble);
    assert!(!full.degraded());

    let zero = RequestPolicy::with_deadline(Duration::ZERO);
    let held = p.try_predict_with(1, &zero).expect("hold");
    assert_eq!(held.level, DegradationLevel::LastValue);
    assert!(held.mean.is_finite());

    let cheap =
        RequestPolicy { entry_level: DegradationLevel::Aggregation, ..RequestPolicy::default() };
    let agg = p.try_predict_with(1, &cheap).expect("aggregation rung");
    assert_eq!(agg.level, DegradationLevel::Aggregation);

    // Out-of-range horizons are typed errors on the fallible path.
    assert!(p.try_predict(0).is_err());
    assert!(p.try_predict(10_000).is_err());
}
