//! Conformance suite: every forecasting model in the repository — SMiLer
//! and all ten competitors — must survive the full continuous-prediction
//! life cycle on every synthetic dataset without producing non-finite
//! output, and must respect the `SeriesPredictor` contract.

#![allow(clippy::needless_range_loop)] // time-indexed evaluation loops

use smiler_baselines::holtwinters::HoltWinters;
use smiler_baselines::lazyknn::{LazyKnn, LazyKnnConfig};
use smiler_baselines::linear::{self, LinearConfig};
use smiler_baselines::nystrom::{nys_svr, NysSvrConfig};
use smiler_baselines::sparse_gp::{self, SparseGpConfig};
use smiler_baselines::SeriesPredictor;
use smiler_core::sensor::{SmilerConfig, SmilerForecaster};
use smiler_gpu::Device;
use smiler_timeseries::synthetic::{DatasetKind, SyntheticSpec};
use std::sync::Arc;

const HORIZONS: [usize; 3] = [1, 3, 6];

fn roster() -> Vec<(&'static str, Box<dyn SeriesPredictor>)> {
    let device = Arc::new(Device::default_gpu());
    let hs: Vec<usize> = HORIZONS.to_vec();
    let lin = LinearConfig { window: 16, horizons: hs.clone(), ..Default::default() };
    let sg = SparseGpConfig {
        window: 12,
        horizons: hs.clone(),
        active_points: 8,
        stride: 4,
        train_iters: 3,
        ..SparseGpConfig::psgp()
    };
    let smiler_cfg = SmilerConfig { h_max: 6, ..Default::default() };
    vec![
        (
            "SMiLer-GP",
            Box::new(SmilerForecaster::gp(Arc::clone(&device), smiler_cfg.clone()))
                as Box<dyn SeriesPredictor>,
        ),
        ("SMiLer-AR", Box::new(SmilerForecaster::ar(device, smiler_cfg))),
        ("PSGP", Box::new(sparse_gp::psgp(sg.clone()))),
        (
            "VLGP",
            Box::new(sparse_gp::vlgp(SparseGpConfig {
                objective: smiler_baselines::sparse_gp::SparseObjective::VariationalFreeEnergy,
                ..sg
            })),
        ),
        (
            "NysSVR",
            Box::new(nys_svr(NysSvrConfig {
                window: 12,
                horizons: hs.clone(),
                rank: 12,
                stride: 4,
                ..Default::default()
            })),
        ),
        ("SgdSVR", Box::new(linear::sgd_svr(lin.clone()))),
        ("SgdRR", Box::new(linear::sgd_rr(lin.clone()))),
        ("OnlineSVR", Box::new(linear::online_svr(lin.clone()))),
        ("OnlineRR", Box::new(linear::online_rr(lin))),
        (
            "LazyKNN",
            Box::new(LazyKnn::new(LazyKnnConfig { window: 12, k: 4, rho: 3, bootstrap: None })),
        ),
        ("FullHW", Box::new(HoltWinters::full(144))),
        ("SegHW", Box::new(HoltWinters::segment(144))),
    ]
}

#[test]
fn every_model_survives_the_continuous_life_cycle() {
    for kind in DatasetKind::all() {
        let dataset = SyntheticSpec { kind, sensors: 1, days: 8, seed: 21 }.generate();
        let series = dataset.sensors[0].values();
        let steps = 8;
        let split = series.len() - steps - 6;
        for (name, mut model) in roster() {
            assert_eq!(model.name(), name, "name must be stable");
            model.train(&series[..split]);
            for t in split..split + steps {
                for &h in &HORIZONS {
                    let (mean, var) = model.predict(h);
                    assert!(
                        mean.is_finite(),
                        "{name} on {} produced non-finite mean at t={t} h={h}",
                        dataset.name
                    );
                    assert!(
                        var.is_finite() && var > 0.0,
                        "{name} on {} produced bad variance {var} at t={t} h={h}",
                        dataset.name
                    );
                }
                model.observe(series[t]);
            }
        }
    }
}

#[test]
fn online_flags_match_paper_grouping() {
    let offline = ["PSGP", "VLGP", "NysSVR", "SgdSVR", "SgdRR"];
    let online = ["SMiLer-GP", "SMiLer-AR", "LazyKNN", "FullHW", "SegHW", "OnlineSVR", "OnlineRR"];
    for (name, model) in roster() {
        if offline.contains(&name) {
            assert!(!model.is_online(), "{name} must be in the offline group");
        } else if online.contains(&name) {
            assert!(model.is_online(), "{name} must be in the online group");
        } else {
            panic!("{name} not classified");
        }
    }
}

#[test]
fn models_handle_empty_and_tiny_training_sets() {
    for (name, mut model) in roster() {
        model.train(&[]);
        let (mean, var) = model.predict(1);
        assert!(mean.is_finite() && var > 0.0, "{name} failed on empty history");
        model.train(&[0.5, 1.0, -0.5]);
        model.observe(0.1);
        let (mean, var) = model.predict(1);
        assert!(mean.is_finite() && var > 0.0, "{name} failed on tiny history");
    }
}

#[test]
fn models_handle_constant_series() {
    let series = vec![1.0; 800];
    for (name, mut model) in roster() {
        model.train(&series[..760]);
        for v in &series[760..770] {
            let (mean, var) = model.predict(1);
            assert!(mean.is_finite(), "{name} mean on constant series");
            assert!(var.is_finite() && var > 0.0, "{name} var on constant series");
            model.observe(*v);
        }
        // Any sensible model predicts (close to) the constant.
        let (mean, _) = model.predict(1);
        assert!((mean - 1.0).abs() < 1.0, "{name} predicted {mean} on a constant-1 series");
    }
}
