//! Numeric equivalence of the optimised hot paths against their allocating
//! / batch oracles, at the paper's default scale (`d = 96`, `ρ = 8`):
//!
//! * workspace DTW variants vs. the allocating entry points,
//! * the shared-prefix GP factorisation vs. independent per-k fits,
//! * cascaded verification vs. batch verification — identical kNN sets
//!   across continuous steps.

use smiler_dtw::DtwScratch;
use smiler_gp::{GpScratch, Hyperparams, PrefixGp};
use smiler_gpu::Device;
use smiler_index::{IndexParams, SmilerIndex, ThresholdStrategy, VerifyMode};
use smiler_linalg::Matrix;

fn pseudo_series(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (i as f64 * 0.11).sin() * 1.5 + (state % 1000) as f64 / 700.0
        })
        .collect()
}

#[test]
fn workspace_dtw_matches_allocating_oracle() {
    let series = pseudo_series(600, 5);
    let d = 96;
    let rho = 8;
    let query = &series[series.len() - d..];
    let mut scratch = DtwScratch::new();
    for t in (0..series.len() - d).step_by(11) {
        let cand = &series[t..t + d];
        let fresh = smiler_dtw::dtw_compressed(query, cand, rho);
        let reused = smiler_dtw::dtw_compressed_with(query, cand, rho, &mut scratch);
        assert_eq!(fresh, reused, "workspace DTW diverged at t={t}");
        let abandon = smiler_dtw::dtw_early_abandon_with(query, cand, rho, fresh, &mut scratch);
        assert_eq!(abandon, Some(fresh), "inclusive threshold must keep the exact distance");
    }
}

#[test]
fn prefix_gp_matches_independent_fits() {
    let k_max = 32;
    let d = 24;
    let x = Matrix::from_fn(k_max, d, |i, j| ((i * d + j) as f64 * 0.29).sin() * 1.3);
    let y: Vec<f64> = (0..k_max).map(|i| (i as f64 * 0.43).cos()).collect();
    let x0: Vec<f64> = (0..d).map(|j| (j as f64 * 0.17).cos() * 0.8).collect();
    let pg = PrefixGp::fit(x, Hyperparams::new(1.0, 1.5, 0.12)).expect("fit");
    assert!(pg.exact());
    let mut scratch = GpScratch::new();
    for k in 1..=k_max {
        let mean_k = y[..k].iter().sum::<f64>() / k as f64;
        let centred: Vec<f64> = y[..k].iter().map(|v| v - mean_k).collect();
        let (mean, var) = pg.predict_prefix(k, &centred, &x0, &mut scratch);
        let (o_mean, o_var) = pg.oracle_fit(k, &centred).expect("oracle fit").predict(&x0);
        assert!((mean - o_mean).abs() < 1e-9, "k={k}: mean {mean} vs {o_mean}");
        assert!((var - o_var).abs() < 1e-9, "k={k}: var {var} vs {o_var}");
    }
}

#[test]
fn cascade_and_batch_return_identical_knn_sets_at_paper_scale() {
    let device = Device::default_gpu();
    let params = IndexParams::default(); // d = 96, ρ = 8, k = 32
    for strategy in [ThresholdStrategy::ExactKBest, ThresholdStrategy::PaperKthLb] {
        let mut series = pseudo_series(700, 11);
        let mut batch = SmilerIndex::build(&device, series.clone(), params.clone())
            .with_threshold(strategy)
            .with_verify_mode(VerifyMode::Batch);
        let mut cascade =
            SmilerIndex::build(&device, series.clone(), params.clone()).with_threshold(strategy);
        for step in 0..6 {
            if step > 0 {
                let v = (step as f64 * 0.37).sin() + 0.1 * step as f64;
                series.push(v);
                batch.advance(&device, v);
                cascade.advance(&device, v);
            }
            let max_end = series.len() - 5;
            let b = batch.search(&device, max_end);
            let c = cascade.search(&device, max_end);
            assert_eq!(b.stats.candidates, c.stats.candidates, "step {step}");
            assert_eq!(b.stats.unfiltered, c.stats.unfiltered, "step {step}");
            for (i, (bn, cn)) in b.neighbors.iter().zip(c.neighbors.iter()).enumerate() {
                assert_eq!(bn.len(), cn.len(), "step {step} item {i}");
                for (x, y) in bn.iter().zip(cn) {
                    assert_eq!(x.start, y.start, "step {step} item {i}");
                    assert!(
                        (x.distance - y.distance).abs() < 1e-9,
                        "step {step} item {i}: {x:?} vs {y:?}"
                    );
                }
            }
        }
    }
}
