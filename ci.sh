#!/usr/bin/env bash
# CI gate: formatting, lints, build, tests.
#
# Usage: ./ci.sh [--quick]
#   --quick  skip the release build and run only the fast test subset
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
fi

echo "==> cargo fmt --check"
cargo fmt --check

# The serving request path must stay panic-free: no .unwrap()/.expect(
# outside #[cfg(test)] in the files the fallible API flows through. The
# durability layer is held to the same bar: a corrupt byte on disk must
# surface as a typed StoreError, never a panic. So is the observability
# path: tracing and telemetry ride every request, and a panicking
# trace mark would take the request down with it.
echo "==> panic-free request path (no unwrap/expect in serving files)"
GATED_FILES=(
    crates/core/src/system.rs
    crates/core/src/sensor.rs
    crates/core/src/predictor.rs
    crates/core/src/serve.rs
    crates/index/src/search.rs
    crates/index/src/scan.rs
    crates/index/src/fleet.rs
    crates/store/src/checkpoint.rs
    crates/store/src/codec.rs
    crates/store/src/lib.rs
    crates/store/src/store.rs
    crates/store/src/wal.rs
    crates/obs/src/trace.rs
    crates/obs/src/window.rs
    crates/obs/src/stamp.rs
)
GATE_FAIL=0
for f in "${GATED_FILES[@]}"; do
    HITS=$(awk '/^#\[cfg\(test\)\]/{exit} {print NR": "$0}' "$f" \
        | grep -F -e '.unwrap()' -e '.expect(' || true)
    if [[ -n "$HITS" ]]; then
        echo "ERROR: panicking call in request path $f:"
        echo "$HITS"
        GATE_FAIL=1
    fi
done
if [[ "$GATE_FAIL" == "1" ]]; then
    echo "==> ci.sh: FAILED (use typed errors or infallible fallbacks in the request path)"
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" == "1" ]]; then
    echo "==> cargo test --workspace (lib + bins only)"
    cargo test --workspace --lib --bins

    echo "==> cargo test --test fault_tolerance"
    cargo test -p smiler-core --test fault_tolerance

    echo "==> cargo test --test serving"
    cargo test -p smiler-core --test serving

    # Checkpoint/restore smoke: runs a fleet, kills it mid-run, restores
    # from checkpoint + WAL, and compares predictions bitwise against a
    # never-stopped fleet (plus torn-tail and checkpoint-corruption cases).
    echo "==> cargo test --test durability (kill/restore bitwise smoke)"
    cargo test -p smiler-core --test durability

    # Request tracing: exactly one schema-valid terminal per admitted
    # request, bitwise-invisible to predictions, batch-id linking, and the
    # status surface (windowed tails, rung mix, SLO burn, model quality).
    echo "==> cargo test --test tracing (request traces + status surface)"
    cargo test -p smiler-core --test tracing

    # The load-generating bench entry points must at least compile.
    echo "==> cargo build -p smiler-bench (bench-serve compile check)"
    cargo build -p smiler-bench --bin expt
else
    echo "==> cargo build --workspace --release"
    cargo build --workspace --release

    echo "==> cargo test --workspace"
    cargo test --workspace

    # Serve smoke with tracing on: a real CLI run writing request traces
    # and status lines, every trace schema-validated by the CLI test; then
    # the observability budget — trace-path cost must stay under 5% of a
    # served request, traces complete and schema-valid, predictions
    # bitwise-identical with tracing on.
    echo "==> expt bench-obs --smoke --enforce-budget (observability budget)"
    cargo run -p smiler-bench --release --bin expt -- \
        bench-obs --smoke --enforce-budget --out "$(mktemp -d)/BENCH_obs_smoke.json"

    echo "==> cargo bench --workspace --no-run"
    cargo bench --workspace --no-run
fi

echo "==> ci.sh: all checks passed"
