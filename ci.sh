#!/usr/bin/env bash
# CI gate: formatting, lints, build, tests.
#
# Usage: ./ci.sh [--quick]
#   --quick  skip the release build and run only the fast test subset
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
fi

echo "==> cargo fmt --check"
cargo fmt --check

# The serving request path must stay panic-free: no .unwrap()/.expect(
# outside #[cfg(test)] in the files the fallible API flows through. The
# durability layer is held to the same bar: a corrupt byte on disk must
# surface as a typed StoreError, never a panic.
echo "==> panic-free request path (no unwrap/expect in serving files)"
GATED_FILES=(
    crates/core/src/system.rs
    crates/core/src/sensor.rs
    crates/core/src/predictor.rs
    crates/core/src/serve.rs
    crates/index/src/search.rs
    crates/index/src/scan.rs
    crates/index/src/fleet.rs
    crates/store/src/checkpoint.rs
    crates/store/src/codec.rs
    crates/store/src/lib.rs
    crates/store/src/store.rs
    crates/store/src/wal.rs
)
GATE_FAIL=0
for f in "${GATED_FILES[@]}"; do
    HITS=$(awk '/^#\[cfg\(test\)\]/{exit} {print NR": "$0}' "$f" \
        | grep -F -e '.unwrap()' -e '.expect(' || true)
    if [[ -n "$HITS" ]]; then
        echo "ERROR: panicking call in request path $f:"
        echo "$HITS"
        GATE_FAIL=1
    fi
done
if [[ "$GATE_FAIL" == "1" ]]; then
    echo "==> ci.sh: FAILED (use typed errors or infallible fallbacks in the request path)"
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" == "1" ]]; then
    echo "==> cargo test --workspace (lib + bins only)"
    cargo test --workspace --lib --bins

    echo "==> cargo test --test fault_tolerance"
    cargo test -p smiler-core --test fault_tolerance

    echo "==> cargo test --test serving"
    cargo test -p smiler-core --test serving

    # Checkpoint/restore smoke: runs a fleet, kills it mid-run, restores
    # from checkpoint + WAL, and compares predictions bitwise against a
    # never-stopped fleet (plus torn-tail and checkpoint-corruption cases).
    echo "==> cargo test --test durability (kill/restore bitwise smoke)"
    cargo test -p smiler-core --test durability

    # The load-generating bench entry points must at least compile.
    echo "==> cargo build -p smiler-bench (bench-serve compile check)"
    cargo build -p smiler-bench --bin expt
else
    echo "==> cargo build --workspace --release"
    cargo build --workspace --release

    echo "==> cargo test --workspace"
    cargo test --workspace

    echo "==> cargo bench --workspace --no-run"
    cargo bench --workspace --no-run
fi

echo "==> ci.sh: all checks passed"
