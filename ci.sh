#!/usr/bin/env bash
# CI gate: formatting, lints, build, tests.
#
# Usage: ./ci.sh [--quick]
#   --quick  skip the release build and run only the fast test subset
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
    QUICK=1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" == "1" ]]; then
    echo "==> cargo test --workspace (lib + bins only)"
    cargo test --workspace --lib --bins
else
    echo "==> cargo build --workspace --release"
    cargo build --workspace --release

    echo "==> cargo test --workspace"
    cargo test --workspace

    echo "==> cargo bench --workspace --no-run"
    cargo bench --workspace --no-run
fi

echo "==> ci.sh: all checks passed"
